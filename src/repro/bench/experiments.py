"""Experiment runners: one per table/figure of the paper's evaluation.

Each runner returns a dict with structured results plus a ``table`` key
holding the rendered rows/series in the paper's format.  See DESIGN.md for
the experiment index and EXPERIMENTS.md for paper-vs-measured shapes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import (
    DACEMSCNModel,
    DACEQueryFormerModel,
    MSCNModel,
    PostgresCostBaseline,
    QPPNetModel,
    QueryFormerModel,
    TPoolModel,
    ZeroShotModel,
)
from repro.bench.cache import (
    get_workload1,
    get_workload2,
    get_workload3,
    pretrain_dace,
    pretrain_zeroshot,
    training_sets,
)
from repro.bench.config import DEFAULT, BenchScale
from repro.experiments.registry import cell
from repro.catalog.zoo import load_database
from repro.metrics import format_table, qerror_summary
from repro.metrics.qerror import QErrorSummary
from repro.workloads import PlanDataset, drift_datasets
from repro.workloads.drift import drift_queries
from repro.workloads.dataset import collect_workload

NODE_BUCKETS = ((2, 5), (6, 8), (9, 11), (12, 14), (15, 99))


def _bucket_label(bucket) -> str:
    low, high = bucket
    return f"{low}-{high}" if high < 99 else f"{low}+"


def _bucketed_qerror(
    predictions: np.ndarray, dataset: PlanDataset
) -> Dict[str, QErrorSummary]:
    node_counts = np.array([s.num_nodes for s in dataset])
    actual = dataset.latencies()
    out: Dict[str, QErrorSummary] = {}
    for bucket in NODE_BUCKETS:
        mask = (node_counts >= bucket[0]) & (node_counts <= bucket[1])
        if mask.sum() >= 3:
            out[_bucket_label(bucket)] = qerror_summary(
                predictions[mask], actual[mask]
            )
    return out


# --------------------------------------------------------------------- #
# Fig 4 — motivation: Zero-Shot q-error grows with plan size
# --------------------------------------------------------------------- #
@cell("fig04")
def fig04_zeroshot_nodes(scale: BenchScale = DEFAULT,
                         exclude: str = "imdb") -> dict:
    """Zero-Shot's mean q-error by number of plan nodes (leave-one-out).

    ``exclude`` names the held-out database — the paper's figure holds
    out IMDB, and the experiment matrix sweeps it as an axis.
    """
    test = get_workload1(scale)[exclude]
    model = pretrain_zeroshot(scale, exclude=exclude)
    buckets = _bucketed_qerror(model.predict_ms(test), test)
    rows = [[label, s.mean, s.median, s.count] for label, s in buckets.items()]
    table = format_table(
        ["nodes", "mean qerror", "median qerror", "queries"], rows,
        title=f"Fig 4: Zero-Shot accuracy by plan size "
              f"(tested on unseen {exclude})",
    )
    return {"buckets": buckets, "table": table}


# --------------------------------------------------------------------- #
# Fig 5 — overall accuracy on workloads 1 and 2
# --------------------------------------------------------------------- #
@cell("fig05")
def fig05_overall_accuracy(
    scale: BenchScale = DEFAULT,
    databases: Optional[Sequence[str]] = None,
) -> dict:
    """Per-database leave-one-out medians: Zero-Shot and DACE on workload 1,
    DACE-LoRA (across-more) on workload 2."""
    w1 = get_workload1(scale)
    w2 = get_workload2(scale)
    databases = list(databases) if databases else list(scale.databases)
    per_db: Dict[str, dict] = {}
    for name in databases:
        zero_shot = pretrain_zeroshot(scale, exclude=name)
        dace = pretrain_dace(scale, exclude=name)
        zs_summary = qerror_summary(
            zero_shot.predict_ms(w1[name]), w1[name].latencies()
        )
        dace_summary = qerror_summary(
            dace.predict(w1[name]), w1[name].latencies()
        )
        # Across-more: fine-tune the pre-trained DACE on the other 19
        # databases' M2 labels, then test on the held-out database on M2.
        import copy
        dace_lora = copy.deepcopy(dace)
        tune_sets = [w2[n] for n in scale.databases if n != name]
        dace_lora.fine_tune_lora(
            PlanDataset.merge(tune_sets), epochs=scale.lora_epochs
        )
        lora_summary = qerror_summary(
            dace_lora.predict(w2[name]), w2[name].latencies()
        )
        per_db[name] = {
            "Zero-Shot": zs_summary,
            "DACE": dace_summary,
            "DACE-LoRA(w2)": lora_summary,
        }
    rows = [
        [name,
         result["Zero-Shot"].median,
         result["DACE"].median,
         result["DACE-LoRA(w2)"].median]
        for name, result in per_db.items()
    ]
    dace_wins = sum(
        1 for r in per_db.values()
        if r["DACE"].median <= r["Zero-Shot"].median
    )
    table = format_table(
        ["database", "Zero-Shot median", "DACE median", "DACE-LoRA median (w2)"],
        rows,
        title=(f"Fig 5: overall accuracy, leave-one-out "
               f"(DACE beats Zero-Shot on {dace_wins}/{len(per_db)} dbs)"),
    )
    return {"per_db": per_db, "dace_wins": dace_wins, "table": table}


# --------------------------------------------------------------------- #
# Tab I — workload 3 accuracy for every model
# --------------------------------------------------------------------- #
@cell("tab1")
def tab1_workload3(scale: BenchScale = DEFAULT) -> dict:
    """q-error percentiles on Synthetic/Scale/JOB-light for all models."""
    w3 = get_workload3(scale)
    imdb = load_database("imdb")

    models: Dict[str, object] = {}
    models["PostgreSQL"] = PostgresCostBaseline().fit(w3.train)
    models["MSCN"] = MSCNModel(
        imdb, epochs=scale.baseline_epochs, seed=scale.seed
    ).fit(w3.train)
    models["QPPNet"] = QPPNetModel(
        epochs=scale.baseline_epochs, seed=scale.seed
    ).fit(w3.train)
    models["TPool"] = TPoolModel(
        epochs=scale.baseline_epochs, seed=scale.seed
    ).fit(w3.train)
    models["QueryFormer"] = QueryFormerModel(
        epochs=scale.queryformer_epochs,
        n_layers=scale.queryformer_layers,
        seed=scale.seed,
    ).fit(w3.train)
    models["Zero-Shot"] = pretrain_zeroshot(scale, exclude="imdb")

    dace = pretrain_dace(scale, exclude="imdb")
    models["DACE"] = dace

    import copy
    dace_lora = copy.deepcopy(dace)
    dace_lora.fine_tune_lora(w3.train, epochs=scale.lora_epochs)
    models["DACE-LoRA"] = dace_lora

    def predictions(model, dataset):
        if hasattr(model, "predict_ms"):
            return model.predict_ms(dataset)
        return model.predict(dataset)

    results: Dict[str, Dict[str, QErrorSummary]] = {}
    for split_name, split in w3.test_splits().items():
        results[split_name] = {
            name: qerror_summary(predictions(model, split), split.latencies())
            for name, model in models.items()
        }

    tables = []
    for split_name, by_model in results.items():
        rows = [[name] + summary.as_row()
                for name, summary in by_model.items()]
        tables.append(format_table(
            ["model", "median", "90th", "95th", "99th", "max", "mean"],
            rows,
            title=f"Tab I ({split_name}): q-error on workload 3",
        ))
    return {"results": results, "table": "\n\n".join(tables)}


# --------------------------------------------------------------------- #
# Fig 6 — knowledge integration on JOB-light
# --------------------------------------------------------------------- #
@cell("fig06")
def fig06_knowledge_integration(scale: BenchScale = DEFAULT) -> dict:
    """MSCN and QueryFormer with vs without the DACE encoder (JOB-light)."""
    w3 = get_workload3(scale)
    imdb = load_database("imdb")
    dace = pretrain_dace(scale, exclude="imdb")

    models = {
        "MSCN": MSCNModel(
            imdb, epochs=scale.baseline_epochs, seed=scale.seed
        ),
        "DACE-MSCN": DACEMSCNModel(
            imdb, dace, epochs=scale.baseline_epochs, seed=scale.seed
        ),
        "QueryFormer": QueryFormerModel(
            epochs=scale.queryformer_epochs,
            n_layers=scale.queryformer_layers,
            seed=scale.seed,
        ),
        "DACE-QueryFormer": DACEQueryFormerModel(
            dace,
            epochs=scale.queryformer_epochs,
            n_layers=scale.queryformer_layers,
            seed=scale.seed,
        ),
    }
    results = {}
    for name, model in models.items():
        model.fit(w3.train)
        results[name] = qerror_summary(
            model.predict_ms(w3.job_light), w3.job_light.latencies()
        )
    rows = [[name] + summary.as_row() for name, summary in results.items()]
    table = format_table(
        ["model", "median", "90th", "95th", "99th", "max", "mean"],
        rows,
        title="Fig 6: knowledge integration on JOB-light",
    )
    return {"results": results, "table": table}


# --------------------------------------------------------------------- #
# Tab II — efficiency
# --------------------------------------------------------------------- #
@cell("tab2")
def tab2_efficiency(scale: BenchScale = DEFAULT) -> dict:
    """Model size, training throughput, inference throughput."""
    w3 = get_workload3(scale)
    train = w3.train
    test = w3.synthetic
    imdb = load_database("imdb")

    def timed_fit(model) -> float:
        start = time.perf_counter()
        model.fit(train)
        return len(train) * getattr(model, "epochs", 1) / (
            time.perf_counter() - start
        )

    def timed_predict(model) -> float:
        predict = model.predict_ms if hasattr(model, "predict_ms") \
            else model.predict
        start = time.perf_counter()
        predict(test)
        return len(test) / (time.perf_counter() - start)

    rows: List[list] = []

    # PostgreSQL: inference = the planner's own cost-estimation throughput.
    from repro.engine.session import EngineSession
    session = EngineSession(imdb, seed=scale.seed)
    queries = [s.query for s in test]
    start = time.perf_counter()
    for query in queries:
        session.explain(query)
    pg_infer = len(queries) / (time.perf_counter() - start)
    rows.append(["PostgreSQL", "-", "-", pg_infer])

    results: Dict[str, dict] = {"PostgreSQL": {"infer_qps": pg_infer}}

    def bench(name: str, model) -> None:
        train_qps = timed_fit(model)
        infer_qps = timed_predict(model)
        size = model.size_mb()
        rows.append([name, size, train_qps, infer_qps])
        results[name] = {
            "size_mb": size, "train_qps": train_qps, "infer_qps": infer_qps,
        }

    bench("MSCN", MSCNModel(imdb, epochs=scale.baseline_epochs,
                            seed=scale.seed))
    bench("QPPNet", QPPNetModel(epochs=scale.baseline_epochs, seed=scale.seed))
    bench("TPool", TPoolModel(epochs=scale.baseline_epochs, seed=scale.seed))
    bench("QueryFormer", QueryFormerModel(
        epochs=scale.queryformer_epochs, n_layers=scale.queryformer_layers,
        seed=scale.seed,
    ))
    bench("Zero-Shot", ZeroShotModel(epochs=scale.baseline_epochs,
                                     seed=scale.seed))

    # DACE: pre-trained estimator.
    from repro.core import DACE, TrainingConfig
    dace = DACE(training=TrainingConfig(
        epochs=scale.dace_epochs, batch_size=64, seed=scale.seed,
    ))
    start = time.perf_counter()
    dace.fit(train)
    dace_train_qps = len(train) * scale.dace_epochs / (
        time.perf_counter() - start
    )
    start = time.perf_counter()
    dace.predict(test)
    dace_infer_qps = len(test) / (time.perf_counter() - start)

    # DACE-LoRA: tuning throughput.
    start = time.perf_counter()
    dace.fine_tune_lora(train, epochs=scale.lora_epochs)
    lora_tune_qps = len(train) * scale.lora_epochs / (
        time.perf_counter() - start
    )
    start = time.perf_counter()
    dace.predict(test)
    lora_infer_qps = len(test) / (time.perf_counter() - start)

    rows.append(["DACE-LoRA", dace.size_mb(include_lora=True) -
                 dace.size_mb(), lora_tune_qps, lora_infer_qps])
    rows.append(["DACE", dace.size_mb(), dace_train_qps, dace_infer_qps])
    results["DACE"] = {
        "size_mb": dace.size_mb(),
        "train_qps": dace_train_qps,
        "infer_qps": dace_infer_qps,
    }
    results["DACE-LoRA"] = {
        "size_mb": dace.size_mb(include_lora=True) - dace.size_mb(),
        "train_qps": lora_tune_qps,
        "infer_qps": lora_infer_qps,
    }

    table = format_table(
        ["model", "size (MB)", "train q/s", "infer q/s"], rows,
        title="Tab II: efficiency analysis",
    )
    return {"results": results, "table": table}


# --------------------------------------------------------------------- #
# Fig 7 — data drift on TPC-H
# --------------------------------------------------------------------- #
@cell("fig07")
def fig07_data_drift(scale: BenchScale = DEFAULT) -> dict:
    """Median/95th q-error on TPC-H at growing scale factors."""
    datasets = drift_datasets(
        num_queries=scale.drift_queries,
        scale_factors=scale.drift_factors,
        seed=scale.seed,
    )
    base = datasets[scale.drift_factors[0]]

    # WDMs train on TPC-H at the base scale with their own workload.
    tpch = load_database("tpc_h")
    wdm_train_queries = drift_queries(scale.drift_queries, seed=scale.seed + 99)
    wdm_train = collect_workload(tpch, wdm_train_queries, seed=scale.seed)

    models: Dict[str, object] = {
        "PostgreSQL": PostgresCostBaseline().fit(wdm_train),
        "MSCN": MSCNModel(
            tpch, epochs=scale.baseline_epochs, seed=scale.seed
        ).fit(wdm_train),
        "QueryFormer": QueryFormerModel(
            epochs=scale.queryformer_epochs,
            n_layers=scale.queryformer_layers,
            seed=scale.seed,
        ).fit(wdm_train),
        "Zero-Shot": pretrain_zeroshot(scale, exclude="tpc_h"),
        "DACE": pretrain_dace(scale, exclude="tpc_h"),
    }

    def predictions(model, dataset):
        if hasattr(model, "predict_ms"):
            return model.predict_ms(dataset)
        return model.predict(dataset)

    results: Dict[str, Dict[float, QErrorSummary]] = {
        name: {} for name in models
    }
    for factor, dataset in datasets.items():
        for name, model in models.items():
            results[name][factor] = qerror_summary(
                predictions(model, dataset), dataset.latencies()
            )
    rows = []
    for name, by_factor in results.items():
        for factor, summary in by_factor.items():
            rows.append([name, factor, summary.median, summary.p95])
    table = format_table(
        ["model", "scale factor", "median", "95th"], rows,
        title="Fig 7: robustness under TPC-H data drift",
    )
    return {"results": results, "table": table}


# --------------------------------------------------------------------- #
# Fig 8 — accuracy by number of training databases
# --------------------------------------------------------------------- #
@cell("fig08")
def fig08_training_databases(scale: BenchScale = DEFAULT) -> dict:
    """DACE vs Zero-Shot on workload-3 splits as training dbs grow."""
    w3 = get_workload3(scale)
    results: Dict[str, Dict[int, Dict[str, float]]] = {
        "DACE": {}, "Zero-Shot": {},
    }
    for count in scale.training_db_counts:
        dace = pretrain_dace(scale, exclude="imdb", num_training_dbs=count)
        zero_shot = pretrain_zeroshot(
            scale, exclude="imdb", num_training_dbs=count
        )
        results["DACE"][count] = {}
        results["Zero-Shot"][count] = {}
        for split_name, split in w3.test_splits().items():
            results["DACE"][count][split_name] = qerror_summary(
                dace.predict(split), split.latencies()
            ).median
            results["Zero-Shot"][count][split_name] = qerror_summary(
                zero_shot.predict_ms(split), split.latencies()
            ).median
    rows = []
    for model_name, by_count in results.items():
        for count, by_split in by_count.items():
            rows.append([
                model_name, count,
                by_split["synthetic"], by_split["scale"],
                by_split["job_light"],
            ])
    table = format_table(
        ["model", "training dbs", "synthetic med", "scale med",
         "job-light med"],
        rows,
        title="Fig 8: accuracy by number of training databases",
    )
    return {"results": results, "table": table}


# --------------------------------------------------------------------- #
# Fig 9 — cold start: MSCN vs DACE-MSCN by training queries
# --------------------------------------------------------------------- #
@cell("fig09")
def fig09_cold_start(scale: BenchScale = DEFAULT) -> dict:
    """MSCN vs DACE-MSCN at growing training-set sizes (JOB-light eval)."""
    w3 = get_workload3(scale)
    imdb = load_database("imdb")
    dace = pretrain_dace(scale, exclude="imdb")
    test = w3.job_light
    pg = PostgresCostBaseline().fit(w3.train)
    pg_summary = qerror_summary(pg.predict_ms(test), test.latencies())

    results: Dict[str, Dict[int, QErrorSummary]] = {
        "MSCN": {}, "DACE-MSCN": {},
    }
    for count in scale.cold_start_counts:
        subset = w3.train.subset(count, seed=scale.seed)
        mscn = MSCNModel(
            imdb, epochs=scale.baseline_epochs, seed=scale.seed
        ).fit(subset)
        hybrid = DACEMSCNModel(
            imdb, dace, epochs=scale.baseline_epochs, seed=scale.seed
        ).fit(subset)
        results["MSCN"][count] = qerror_summary(
            mscn.predict_ms(test), test.latencies()
        )
        results["DACE-MSCN"][count] = qerror_summary(
            hybrid.predict_ms(test), test.latencies()
        )
    rows = [["PostgreSQL", "-", pg_summary.median, pg_summary.p95]]
    for name, by_count in results.items():
        for count, summary in by_count.items():
            rows.append([name, count, summary.median, summary.p95])
    table = format_table(
        ["model", "training queries", "median", "95th"], rows,
        title="Fig 9: cold start — MSCN with and without DACE",
    )
    return {"results": results, "postgres": pg_summary, "table": table}


# --------------------------------------------------------------------- #
# Fig 10 — ablation: tree attention / sub-plans / loss adjuster
# --------------------------------------------------------------------- #
@cell("fig10")
def fig10_ablation(scale: BenchScale = DEFAULT) -> dict:
    """DACE vs w/o TA (no tree attention), w/o SP (alpha=0), w/o LA (alpha=1)."""
    w3 = get_workload3(scale)
    variants = {
        "DACE": dict(),
        "DACE w/o TA": dict(use_tree_attention=False),
        "DACE w/o SP": dict(alpha=0.0),
        "DACE w/o LA": dict(alpha=1.0),
    }
    results: Dict[str, Dict[str, QErrorSummary]] = {}
    for name, kwargs in variants.items():
        model = pretrain_dace(scale, exclude="imdb", **kwargs)
        results[name] = {
            split_name: qerror_summary(model.predict(split),
                                       split.latencies())
            for split_name, split in w3.test_splits().items()
        }
    rows = []
    for name, by_split in results.items():
        for split_name, summary in by_split.items():
            rows.append([name, split_name, summary.median, summary.p95,
                         summary.mean])
    table = format_table(
        ["variant", "split", "median", "95th", "mean"], rows,
        title="Fig 10: ablation of tree attention and the loss adjuster",
    )
    return {"results": results, "table": table}


# --------------------------------------------------------------------- #
# Fig 11 — robustness to plan size (loss adjuster ablation)
# --------------------------------------------------------------------- #
@cell("fig11")
def fig11_nodes_ablation(scale: BenchScale = DEFAULT) -> dict:
    """DACE vs DACE w/o LA by plan node count, on unseen imdb queries."""
    test = get_workload1(scale)["imdb"]
    dace = pretrain_dace(scale, exclude="imdb")
    dace_wola = pretrain_dace(scale, exclude="imdb", alpha=1.0)
    buckets = {
        "DACE": _bucketed_qerror(dace.predict(test), test),
        "DACE w/o LA": _bucketed_qerror(dace_wola.predict(test), test),
    }
    rows = []
    for name, by_bucket in buckets.items():
        for label, summary in by_bucket.items():
            rows.append([name, label, summary.mean, summary.median,
                         summary.count])
    table = format_table(
        ["variant", "nodes", "mean qerror", "median qerror", "queries"],
        rows,
        title="Fig 11: accuracy by plan size, with and without the loss "
              "adjuster",
    )
    return {"results": buckets, "table": table}


# --------------------------------------------------------------------- #
# Fig 12 — estimated vs actual cardinality inputs
# --------------------------------------------------------------------- #
@cell("fig12")
def fig12_actual_cardinality(scale: BenchScale = DEFAULT) -> dict:
    """DACE vs DACE-A (true cardinalities) by number of training dbs."""
    w3 = get_workload3(scale)
    results: Dict[str, Dict[int, Dict[str, float]]] = {
        "DACE": {}, "DACE-A": {},
    }
    for count in scale.training_db_counts:
        dace = pretrain_dace(scale, exclude="imdb", num_training_dbs=count)
        dace_a = pretrain_dace(
            scale, exclude="imdb", num_training_dbs=count,
            card_source="actual",
        )
        results["DACE"][count] = {}
        results["DACE-A"][count] = {}
        for split_name, split in w3.test_splits().items():
            results["DACE"][count][split_name] = qerror_summary(
                dace.predict(split), split.latencies()
            ).median
            results["DACE-A"][count][split_name] = qerror_summary(
                dace_a.predict(split), split.latencies()
            ).median
    rows = []
    for name, by_count in results.items():
        for count, by_split in by_count.items():
            rows.append([
                name, count,
                by_split["synthetic"], by_split["scale"],
                by_split["job_light"],
            ])
    table = format_table(
        ["model", "training dbs", "synthetic med", "scale med",
         "job-light med"],
        rows,
        title="Fig 12: estimated vs actual cardinality as model input",
    )
    return {"results": results, "table": table}
