"""Experiment-matrix throughput: process fan-out vs serial execution.

The contract pinned here: on a cache-unfriendly mini-matrix (chaos
replays under distinct seeds, so neither the in-process model caches nor
the on-disk encoding cache can share work between cells) the spawn-based
process backend at 4 workers beats a serial run by wall clock while the
stored cell files stay byte-identical (modulo the two timing fields,
``wall_seconds`` and ``created_unix``, which record *when/how long*, not
*what*).

``benchmarks/bench_exp_matrix.py`` runs this in CI; the ≥2x speedup
gate only arms on machines with at least 4 CPUs (a single-core box
cannot demonstrate parallelism — it still checks identity).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.cache import clear_caches
from repro.bench.config import DEFAULT, BenchScale
from repro.experiments.registry import cell
from repro.metrics.tables import format_table

#: Fields of a stored cell file that legitimately differ between two
#: runs of the same config: they record when and how long, not what.
TIMING_FIELDS = ("wall_seconds", "created_unix")


def _normalized_cells(cells_dir: str) -> Dict[str, str]:
    """config-id → canonical JSON with the timing fields stripped."""
    out: Dict[str, str] = {}
    if not os.path.isdir(cells_dir):
        return out
    for name in sorted(os.listdir(cells_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(cells_dir, name)) as handle:
            payload = json.load(handle)
        for field in TIMING_FIELDS:
            payload.pop(field, None)
        out[payload["config_id"]] = json.dumps(payload, sort_keys=True)
    return out


def _run_backend(
    spec, backend: str, workers: int, root: str
) -> Tuple[float, object]:
    """One full matrix run in a private results+cache sandbox."""
    from repro.experiments import ResultsStore, Runner
    from repro.workloads.encoded import CACHE_DIR_ENV

    saved = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = os.path.join(root, "cache")
    # Spawn children start cold; level the field for in-process runs.
    clear_caches()
    try:
        store = ResultsStore(root=os.path.join(root, "results"),
                             scale=spec.scale_name)
        runner = Runner(store, workers=workers, backend=backend)
        started = time.perf_counter()
        summary = runner.run(spec)
        wall = time.perf_counter() - started
        return wall, summary
    finally:
        if saved is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = saved


@cell("exp_matrix")
def exp_matrix(
    scale: BenchScale = DEFAULT,
    n_cells: int = 4,
    workers: int = 4,
    n_plans: int = 120,
    fault_rate: float = 0.15,
    seed_base: int = 1000,
) -> dict:
    """Process-pool vs serial run of a cache-unfriendly chaos matrix.

    Each of the ``n_cells`` cells pins a distinct ``seed`` (a
    ``BenchScale`` field), so every cell regenerates workloads and
    retrains from scratch — the worst case for the thread backend's
    shared caches and the honest case for measuring process fan-out.
    """
    from repro.experiments import ExperimentSpec

    spec = ExperimentSpec(
        "chaos",
        scale=scale,
        axes={"seed": [seed_base + i for i in range(n_cells)]},
        base={"n_plans": n_plans, "fault_rate": fault_rate},
    )

    with tempfile.TemporaryDirectory(prefix="exp-matrix-bench-") as root:
        process_wall, process_summary = _run_backend(
            spec, "process", workers, os.path.join(root, "process")
        )
        serial_wall, serial_summary = _run_backend(
            spec, "thread", 1, os.path.join(root, "serial")
        )
        process_cells = _normalized_cells(os.path.join(
            root, "process", "results", spec.scale_name, "cells"
        ))
        serial_cells = _normalized_cells(os.path.join(
            root, "serial", "results", spec.scale_name, "cells"
        ))

    identical = (
        bool(process_cells)
        and set(process_cells) == set(serial_cells)
        and all(process_cells[k] == serial_cells[k] for k in process_cells)
    )
    speedup = serial_wall / process_wall if process_wall > 0 else 0.0

    rows: List[List] = [
        ["serial (workers=1)", f"{serial_wall:.2f}",
         len(serial_summary.ran), len(serial_summary.failed)],
        [f"process (workers={workers})", f"{process_wall:.2f}",
         len(process_summary.ran), len(process_summary.failed)],
    ]
    table = format_table(
        ["backend", "wall_s", "ran", "failed"],
        rows,
        title=(
            f"exp matrix fan-out ({scale.name} scale, {n_cells} cells): "
            f"{speedup:.2f}x, byte-identical: "
            f"{'yes' if identical else 'NO'}"
        ),
    )
    return {
        "table": table,
        "n_cells": n_cells,
        "workers": workers,
        "n_plans": n_plans,
        "serial_seconds": serial_wall,
        "process_seconds": process_wall,
        "speedup": speedup,
        "identical": identical,
        "serial_failed": len(serial_summary.failed),
        "process_failed": len(process_summary.failed),
        "cpu_count": os.cpu_count() or 1,
    }
