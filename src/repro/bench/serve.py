"""Serving-runtime throughput: per-plan vs batched vs cached inference.

Quantifies what the ``repro.serve`` stack buys over the naive deployment
loop (encode one plan, run one autograd forward, repeat):

- **per-plan** — the legacy path: one encoded batch of size 1 and one
  graph-building forward per plan;
- **micro-batched** — the same single-plan call sites, but routed through
  a :class:`~repro.serve.batching.MicroBatcher` that coalesces them into
  batched, graph-free inference;
- **batched** — ``predict_plans`` on an (uncached) EstimatorService:
  size-sorted chunks through ``model.infer``;
- **cached** — a warm EstimatorService serving the whole workload from
  its fingerprint LRU.

:func:`serve_fused` isolates the serving *forward* dispatch: plan-at-a-
time per-layer ``Module.infer`` vs bucketed batches through the fused
structure-of-arrays kernel (:class:`~repro.serve.fused.FusedInferStep`),
with byte-identity asserted before any throughput number is believed.
"""

from __future__ import annotations

import threading
import time
from typing import List

import numpy as np

from repro.bench.cache import get_workload1, pretrain_dace
from repro.bench.config import DEFAULT, BenchScale
from repro.experiments.registry import cell
from repro.featurize.catcher import catch_plan
from repro.metrics.tables import format_table
from repro.nn import no_grad
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve import ConcurrentEstimatorService, EstimatorService, \
    MicroBatcher


def _legacy_predict_plan(model, encoder, plan) -> float:
    """The seed's per-plan path: encode a batch of one, autograd forward."""
    batch = encoder.encode_batch([catch_plan(plan)], with_labels=False)
    with no_grad():
        pred = model(batch)
    return float(pred.data[0, 0])


@cell("serving")
def serve_throughput(scale: BenchScale = DEFAULT) -> dict:
    """Plans/sec of the serving paths over a repeated-plan workload."""
    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    base_plans = [sample.plan for sample in base]
    # Tile up to a ~1k-plan workload: a serving process sees the same plan
    # shapes again and again, which is exactly what the cache exploits.
    n_plans = min(1000, max(5 * scale.queries_per_db, 5 * len(base_plans)))
    plans = [base_plans[i % len(base_plans)] for i in range(n_plans)]

    def timed(fn, rounds: int = 1) -> float:
        # Fast paths finish a pass in single-digit ms, where one
        # scheduler preemption can halve the measured rate: keep the
        # best of a few rounds for those.
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return n_plans / best

    # Legacy loop: what every caller paid before the serving runtime.
    single_qps = timed(lambda: [
        _legacy_predict_plan(dace.model, dace.encoder, plan)
        for plan in plans
    ])

    # Micro-batched single-plan traffic (cache off isolates batching).
    uncached = EstimatorService(
        dace.model, dace.encoder,
        batch_size=dace.training.batch_size, cache_size=0,
    )
    batcher = MicroBatcher(uncached, max_batch=dace.training.batch_size)

    def run_micro():
        handles = [batcher.submit(plan) for plan in plans]
        batcher.flush()
        return [handle.result() for handle in handles]

    micro_qps = timed(run_micro)

    # One batched call, still uncached.
    batched_qps = timed(lambda: uncached.predict_plans(plans), rounds=3)

    # Warm cache: every plan served from the fingerprint LRU.
    cached = EstimatorService(
        dace.model, dace.encoder, batch_size=dace.training.batch_size,
        cache_size=max(len(base_plans), 1),
    )
    cached.predict_plans(plans)            # warm
    cached.reset_stats()
    cached_qps = timed(lambda: cached.predict_plans(plans), rounds=3)
    stats = cached.cache_stats

    rows: List[list] = []
    results = {}
    for name, qps in [("per-plan", single_qps),
                      ("micro-batched", micro_qps),
                      ("batched", batched_qps),
                      ("cached", cached_qps)]:
        rows.append([name, qps, qps / single_qps])
        results[name] = {"plans_per_s": qps, "speedup": qps / single_qps}

    table = format_table(
        ["path", "plans/s", "speedup"], rows,
        title=f"Serving throughput ({n_plans} plans, "
              f"batch={dace.training.batch_size}, "
              f"cache hit rate {stats.hit_rate:.0%})",
    )
    return {
        "table": table,
        "results": results,
        "n_plans": n_plans,
        "micro_speedup": micro_qps / single_qps,
        "batched_speedup": batched_qps / single_qps,
        "cached_speedup": cached_qps / single_qps,
        "cache_hit_rate": stats.hit_rate,
    }


@cell("fusedserve")
def serve_fused(scale: BenchScale = DEFAULT) -> dict:
    """Fused bucket forwards vs plan-at-a-time ``Module.infer`` serving.

    Three cache-miss paths over one workload of fingerprint-unique plans
    (uniqueness keeps in-call dedup from shrinking one side's work):

    - **per-plan** — single-plan ``predict_plan`` calls through a
      ``fused=False`` service: the serving hot path before this kernel,
      every plan paying its own encode + per-layer ``Module.infer``;
    - **batched per-layer** — ``predict_plans`` with ``fused=False``:
      bucketed batching, per-layer forward;
    - **batched fused** — ``predict_plans`` through the
      :class:`~repro.serve.fused.FusedInferStep` kernel (the default).

    Every path's predictions are checked byte-for-byte equal before any
    number is reported, and the kernel itself is raced against
    ``model.infer`` on one padded bucket.  The headline ratio uses the
    same interleaved-pairs protocol as :func:`serve_concurrency`
    (machine-wide drift hits both sides of a pair and cancels); the
    acceptance gate in ``benchmarks/bench_serve_throughput.py`` holds it
    at >= 2x for batches >= 32.
    """
    import gc
    import statistics

    from repro.serve.fused import FusedInferStep

    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    seen, plans = set(), []
    for sample in base:
        fingerprint = catch_plan(sample.plan).fingerprint()
        if fingerprint not in seen:
            seen.add(fingerprint)
            plans.append(sample.plan)
    n_plans = len(plans)
    batch_size = max(32, dace.training.batch_size)

    def service(fused) -> EstimatorService:
        return EstimatorService(
            dace.model, dace.encoder, batch_size=batch_size,
            cache_size=0, fused=fused,
        )

    per_plan = service(False)
    per_layer = service(False)
    fused = service(None)
    assert fused.fused_active

    # Byte-identity first: a speedup that moves bits is a wrong answer.
    reference = np.array([per_plan.predict_plan(plan) for plan in plans])
    identical = (
        bool(np.array_equal(per_layer.predict_plans(plans), reference))
        and bool(np.array_equal(fused.predict_plans(plans), reference))
    )

    # Kernel vs per-layer forward on one padded bucket (model work only).
    caught = [catch_plan(plan) for plan in plans]
    bucket = [c for c in caught if c.num_nodes <= fused.pad_base]
    bucket = (bucket or caught)[:batch_size]
    kernel_batch = dace.encoder.encode_batch(
        bucket, with_labels=False,
        pad_to=fused._pad_width(max(c.num_nodes for c in bucket)),
    )
    step = FusedInferStep(dace.model)
    kernel_identical = bool(np.array_equal(
        step.forward(kernel_batch), dace.model.infer(kernel_batch)
    ))

    def best_of(fn, rounds: int) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    run_per_plan = lambda: [per_plan.predict_plan(plan) for plan in plans]
    run_per_layer = lambda: per_layer.predict_plans(plans)
    run_fused = lambda: fused.predict_plans(plans)
    run_infer = lambda: dace.model.infer(kernel_batch)
    run_kernel = lambda: step.forward(kernel_batch)

    gc.collect()
    gc.disable()
    try:
        for warm in (run_per_plan, run_per_layer, run_fused):
            warm()
        # Interleaved pairs: per-plan vs fused, median ratio across pairs.
        ratios = []
        per_plan_s = per_layer_s = fused_s = float("inf")
        for _ in range(5):
            pair_plan = best_of(run_per_plan, 2)
            pair_fused = best_of(run_fused, 2)
            per_plan_s = min(per_plan_s, pair_plan)
            fused_s = min(fused_s, pair_fused)
            ratios.append(pair_plan / pair_fused)
        per_layer_s = best_of(run_per_layer, 4)
        infer_s = best_of(run_infer, 30)
        kernel_s = best_of(run_kernel, 30)
    finally:
        gc.enable()
    fused_speedup = statistics.median(ratios)

    rows = [
        ["per-plan infer", per_plan_s / n_plans * 1e6, 1.0],
        ["batched per-layer", per_layer_s / n_plans * 1e6,
         per_plan_s / per_layer_s],
        ["batched fused", fused_s / n_plans * 1e6, per_plan_s / fused_s],
    ]
    table = format_table(
        ["path", "us/plan", "speedup"], rows,
        title=f"Fused serving forward ({n_plans} unique plans, "
              f"batch={batch_size}, cache-miss); paired-median fused "
              f"speedup {fused_speedup:.2f}x; kernel vs infer "
              f"{infer_s / kernel_s:.2f}x on ({len(bucket)}, "
              f"{kernel_batch.max_nodes}) bucket",
    )
    return {
        "table": table,
        "n_plans": n_plans,
        "batch_size": batch_size,
        "per_plan_seconds": per_plan_s,
        "per_layer_seconds": per_layer_s,
        "fused_seconds": fused_s,
        "fused_speedup": fused_speedup,
        "fused_speedup_ratios": ratios,
        "batched_speedup": per_plan_s / per_layer_s,
        "kernel_speedup": infer_s / kernel_s,
        "bit_identical": identical,
        "kernel_bit_identical": kernel_identical,
    }


@cell("concurrency")
def serve_concurrency(scale: BenchScale = DEFAULT) -> dict:
    """Closed-loop concurrent throughput through the worker-pool front-end.

    For each worker count, that many closed-loop clients hammer a
    :class:`~repro.serve.ConcurrentEstimatorService` with single-plan
    calls — the concurrency level *is* the offered batch opportunity, so
    this measures what dynamic batching converts contention into.  Two
    workloads: **cache-miss** (``cache_size=0``; every request pays
    encode + forward, coalescing is the only lever) and **cache-hit** (a
    pre-warmed fingerprint LRU; the pool only adds queue handoff).

    Every cache-miss run's predictions are checked byte-for-byte against
    the plain serial ``EstimatorService`` — the padding buckets make
    coalesced batches bit-identical to the serial path, whatever the
    request interleaving.

    Measurement notes.  The workload keeps only plans in the service's
    base padding bucket, so every request does identical padded work and
    each flush is exactly one forward — the comparison isolates request
    coalescing instead of mixing in the workload's bucket composition.
    The headline ``miss_speedup_8`` uses interleaved measurement pairs
    (w=1 then w=8, each the best of two passes, median ratio across
    pairs): machine-wide slowdowns hit both sides of a pair and cancel,
    where a single w=1/w=8 comparison taken seconds apart would not.
    The garbage collector is paused while the clock runs — a gen-0 sweep
    landing inside one side of a pair is pure noise.
    """
    import gc
    import statistics

    from repro.featurize.catcher import catch_plan
    from repro.serve.service import DEFAULT_PAD_BASE

    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    # One padding bucket: identical per-request work (see docstring).
    bucket_plans = [
        sample.plan for sample in base
        if catch_plan(sample.plan).num_nodes <= DEFAULT_PAD_BASE
    ]
    base_plans = bucket_plans or [sample.plan for sample in base]
    # Longer runs than the other serving benches: the paired-ratio
    # protocol divides two noisy timings, so each side needs enough work
    # for scheduler hiccups to average out.
    n_plans = min(1200, max(10 * scale.queries_per_db,
                            10 * len(base_plans)))
    plans = [base_plans[i % len(base_plans)] for i in range(n_plans)]
    batch_size = dace.training.batch_size

    # The reference is pinned to the per-layer path (fused=False): the
    # pools below serve through the fused kernel, so byte-equality here
    # re-proves fused == per-layer on every concurrent run, not just
    # pool == serial.
    serial = EstimatorService(
        dace.model, dace.encoder, batch_size=batch_size, cache_size=0,
        fused=False,
    )
    reference = serial.predict_plans(plans)

    def run_clients(pool, workers) -> tuple:
        out = [0.0] * n_plans
        # workers + 1: the main thread joins the barrier too, so the
        # clock starts when every client is spawned and ready — thread
        # start-up cost stays off the measurement.
        barrier = threading.Barrier(workers + 1)

        def client(offset: int) -> None:
            barrier.wait()
            for i in range(offset, n_plans, workers):
                out[i] = pool.predict_plan(plans[i])

        clients = [
            threading.Thread(target=client, args=(offset,))
            for offset in range(workers)
        ]
        for thread in clients:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in clients:
            thread.join()
        return time.perf_counter() - start, out

    def make_pool(workers: int, warm: bool) -> ConcurrentEstimatorService:
        cache = max(len(base_plans), 1) if warm else 0
        service = EstimatorService(
            dace.model, dace.encoder, batch_size=batch_size, cache_size=cache,
        )
        pool = ConcurrentEstimatorService(service, workers=workers)
        if warm:
            service.predict_plans(plans)
        return pool

    identical_flags: List[bool] = []

    def check(out) -> None:
        identical_flags.append(bool(np.array_equal(out, reference)))

    worker_counts = (1, 4, 8)
    rows: List[list] = []
    results: dict = {}
    gc.collect()
    gc.disable()
    try:
        for warm, label in ((False, "cache-miss"), (True, "cache-hit")):
            base_qps = None
            for workers in worker_counts:
                pool = make_pool(workers, warm)
                run_clients(pool, workers)  # warm memos and pool threads
                best, out = float("inf"), None
                for _ in range(3):
                    elapsed, out = run_clients(pool, workers)
                    best = min(best, elapsed)
                check(out)
                flush = pool.metrics.histogram("serve.pool.flush_size")
                mean_flush = flush.mean
                pool.close()
                qps = n_plans / best
                if base_qps is None:
                    base_qps = qps
                rows.append([
                    f"{label} w={workers}", qps, qps / base_qps, mean_flush,
                    "yes" if identical_flags[-1] else "NO",
                ])
                results[f"{label}_w{workers}"] = {
                    "plans_per_s": qps,
                    "speedup": qps / base_qps,
                    "mean_flush": mean_flush,
                    "bit_identical": identical_flags[-1],
                }

        # Headline ratio: interleaved pairs, median across pairs.
        pool_1 = make_pool(1, warm=False)
        pool_8 = make_pool(8, warm=False)
        run_clients(pool_1, 1)
        run_clients(pool_8, 8)
        ratios: List[float] = []
        for _ in range(7):
            best_1 = best_8 = float("inf")
            for _ in range(2):
                elapsed, out = run_clients(pool_1, 1)
                best_1 = min(best_1, elapsed)
            check(out)
            for _ in range(2):
                elapsed, out = run_clients(pool_8, 8)
                best_8 = min(best_8, elapsed)
            check(out)
            ratios.append(best_1 / best_8)
        pool_1.close()
        pool_8.close()
    finally:
        gc.enable()
    miss_speedup_8 = statistics.median(ratios)

    table = format_table(
        ["workload", "plans/s", "vs w=1", "mean flush", "bit-identical"],
        rows,
        title=f"Concurrent serving throughput ({n_plans} plans, "
              f"closed-loop clients = workers, max_batch={batch_size}); "
              f"paired-median miss speedup w=8: {miss_speedup_8:.2f}x",
    )
    return {
        "table": table,
        "results": results,
        "n_plans": n_plans,
        "miss_speedup_8": miss_speedup_8,
        "miss_speedup_ratios": ratios,
        "hit_speedup_8": results["cache-hit_w8"]["speedup"],
        "all_bit_identical": all(identical_flags),
    }


@cell("obsoverhead")
def obs_overhead(scale: BenchScale = DEFAULT) -> dict:
    """Instrumentation cost on the warm-cache serving path.

    Serves the same workload from pairs of identically-warmed services —
    one on a live :class:`~repro.obs.MetricsRegistry`, one on the no-op
    ``NULL_REGISTRY`` — and reports the relative slowdown.  The serving
    contract caps it at 5%: observability must never show up in the
    latency it exists to explain.

    Measurement notes: the true cost is tens of nanoseconds per cache
    hit, far below the run-to-run noise of a millisecond-scale pass, so
    three layers of noise control are stacked.  Trials alternate
    null/live (cancels CPU frequency drift), each path keeps its minimum
    (discards scheduler preemption), and the whole comparison repeats on
    freshly built service pairs with the median taken — each service
    owns its cached arrays, and an unlucky heap layout biases every
    trial of one run the same way, which no amount of interleaving can
    cancel.
    """
    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    base_plans = [sample.plan for sample in base]
    n_plans = min(1000, max(5 * scale.queries_per_db, 5 * len(base_plans)))
    plans = [base_plans[i % len(base_plans)] for i in range(n_plans)]

    def warm_service(metrics) -> EstimatorService:
        service = EstimatorService(
            dace.model, dace.encoder, batch_size=dace.training.batch_size,
            cache_size=max(len(base_plans), 1), metrics=metrics,
        )
        service.predict_plans(plans)
        return service

    def timed(service, passes: int = 3) -> float:
        # Time several passes per trial: one warm-cache pass is only a
        # few ms, where timer granularity and allocator noise swamp a
        # 5% effect.
        start = time.perf_counter()
        for _ in range(passes):
            service.predict_plans(plans)
        return (time.perf_counter() - start) / passes

    def measure_pair() -> tuple:
        instrumented = warm_service(MetricsRegistry())
        uninstrumented = warm_service(NULL_REGISTRY)
        timed(uninstrumented, passes=1)
        timed(instrumented, passes=1)
        null_s = live_s = float("inf")
        for _ in range(6):
            null_s = min(null_s, timed(uninstrumented))
            live_s = min(live_s, timed(instrumented))
        return null_s, live_s

    samples = [measure_pair() for _ in range(3)]
    samples.sort(key=lambda pair: pair[1] / pair[0])
    null_s, live_s = samples[len(samples) // 2]
    overhead = live_s / null_s - 1.0

    table = format_table(
        ["path", "warm ms", "plans/s"],
        [["null registry", null_s * 1e3, n_plans / null_s],
         ["instrumented", live_s * 1e3, n_plans / live_s]],
        title=f"Instrumentation overhead ({n_plans} warm-cache plans): "
              f"{overhead:+.2%}",
    )
    return {
        "table": table,
        "n_plans": n_plans,
        "null_seconds": null_s,
        "instrumented_seconds": live_s,
        "overhead": overhead,
    }
