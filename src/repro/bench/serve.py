"""Serving-runtime throughput: per-plan vs batched vs cached inference.

Quantifies what the ``repro.serve`` stack buys over the naive deployment
loop (encode one plan, run one autograd forward, repeat):

- **per-plan** — the legacy path: one encoded batch of size 1 and one
  graph-building forward per plan;
- **micro-batched** — the same single-plan call sites, but routed through
  a :class:`~repro.serve.batching.MicroBatcher` that coalesces them into
  batched, graph-free inference;
- **batched** — ``predict_plans`` on an (uncached) EstimatorService:
  size-sorted chunks through ``model.infer``;
- **cached** — a warm EstimatorService serving the whole workload from
  its fingerprint LRU.
"""

from __future__ import annotations

import time
from typing import List

from repro.bench.cache import get_workload1, pretrain_dace
from repro.bench.config import DEFAULT, BenchScale
from repro.featurize.catcher import catch_plan
from repro.metrics.tables import format_table
from repro.nn import no_grad
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.serve import EstimatorService, MicroBatcher


def _legacy_predict_plan(model, encoder, plan) -> float:
    """The seed's per-plan path: encode a batch of one, autograd forward."""
    batch = encoder.encode_batch([catch_plan(plan)], with_labels=False)
    with no_grad():
        pred = model(batch)
    return float(pred.data[0, 0])


def serve_throughput(scale: BenchScale = DEFAULT) -> dict:
    """Plans/sec of the serving paths over a repeated-plan workload."""
    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    base_plans = [sample.plan for sample in base]
    # Tile up to a ~1k-plan workload: a serving process sees the same plan
    # shapes again and again, which is exactly what the cache exploits.
    n_plans = min(1000, max(5 * scale.queries_per_db, 5 * len(base_plans)))
    plans = [base_plans[i % len(base_plans)] for i in range(n_plans)]

    def timed(fn, rounds: int = 1) -> float:
        # Fast paths finish a pass in single-digit ms, where one
        # scheduler preemption can halve the measured rate: keep the
        # best of a few rounds for those.
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return n_plans / best

    # Legacy loop: what every caller paid before the serving runtime.
    single_qps = timed(lambda: [
        _legacy_predict_plan(dace.model, dace.encoder, plan)
        for plan in plans
    ])

    # Micro-batched single-plan traffic (cache off isolates batching).
    uncached = EstimatorService(
        dace.model, dace.encoder,
        batch_size=dace.training.batch_size, cache_size=0,
    )
    batcher = MicroBatcher(uncached, max_batch=dace.training.batch_size)

    def run_micro():
        handles = [batcher.submit(plan) for plan in plans]
        batcher.flush()
        return [handle.result() for handle in handles]

    micro_qps = timed(run_micro)

    # One batched call, still uncached.
    batched_qps = timed(lambda: uncached.predict_plans(plans), rounds=3)

    # Warm cache: every plan served from the fingerprint LRU.
    cached = EstimatorService(
        dace.model, dace.encoder, batch_size=dace.training.batch_size,
        cache_size=max(len(base_plans), 1),
    )
    cached.predict_plans(plans)            # warm
    cached.reset_stats()
    cached_qps = timed(lambda: cached.predict_plans(plans), rounds=3)
    stats = cached.cache_stats

    rows: List[list] = []
    results = {}
    for name, qps in [("per-plan", single_qps),
                      ("micro-batched", micro_qps),
                      ("batched", batched_qps),
                      ("cached", cached_qps)]:
        rows.append([name, qps, qps / single_qps])
        results[name] = {"plans_per_s": qps, "speedup": qps / single_qps}

    table = format_table(
        ["path", "plans/s", "speedup"], rows,
        title=f"Serving throughput ({n_plans} plans, "
              f"batch={dace.training.batch_size}, "
              f"cache hit rate {stats.hit_rate:.0%})",
    )
    return {
        "table": table,
        "results": results,
        "n_plans": n_plans,
        "micro_speedup": micro_qps / single_qps,
        "batched_speedup": batched_qps / single_qps,
        "cached_speedup": cached_qps / single_qps,
        "cache_hit_rate": stats.hit_rate,
    }


def obs_overhead(scale: BenchScale = DEFAULT) -> dict:
    """Instrumentation cost on the warm-cache serving path.

    Serves the same workload from pairs of identically-warmed services —
    one on a live :class:`~repro.obs.MetricsRegistry`, one on the no-op
    ``NULL_REGISTRY`` — and reports the relative slowdown.  The serving
    contract caps it at 5%: observability must never show up in the
    latency it exists to explain.

    Measurement notes: the true cost is tens of nanoseconds per cache
    hit, far below the run-to-run noise of a millisecond-scale pass, so
    three layers of noise control are stacked.  Trials alternate
    null/live (cancels CPU frequency drift), each path keeps its minimum
    (discards scheduler preemption), and the whole comparison repeats on
    freshly built service pairs with the median taken — each service
    owns its cached arrays, and an unlucky heap layout biases every
    trial of one run the same way, which no amount of interleaving can
    cancel.
    """
    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    base_plans = [sample.plan for sample in base]
    n_plans = min(1000, max(5 * scale.queries_per_db, 5 * len(base_plans)))
    plans = [base_plans[i % len(base_plans)] for i in range(n_plans)]

    def warm_service(metrics) -> EstimatorService:
        service = EstimatorService(
            dace.model, dace.encoder, batch_size=dace.training.batch_size,
            cache_size=max(len(base_plans), 1), metrics=metrics,
        )
        service.predict_plans(plans)
        return service

    def timed(service, passes: int = 3) -> float:
        # Time several passes per trial: one warm-cache pass is only a
        # few ms, where timer granularity and allocator noise swamp a
        # 5% effect.
        start = time.perf_counter()
        for _ in range(passes):
            service.predict_plans(plans)
        return (time.perf_counter() - start) / passes

    def measure_pair() -> tuple:
        instrumented = warm_service(MetricsRegistry())
        uninstrumented = warm_service(NULL_REGISTRY)
        timed(uninstrumented, passes=1)
        timed(instrumented, passes=1)
        null_s = live_s = float("inf")
        for _ in range(6):
            null_s = min(null_s, timed(uninstrumented))
            live_s = min(live_s, timed(instrumented))
        return null_s, live_s

    samples = [measure_pair() for _ in range(3)]
    samples.sort(key=lambda pair: pair[1] / pair[0])
    null_s, live_s = samples[len(samples) // 2]
    overhead = live_s / null_s - 1.0

    table = format_table(
        ["path", "warm ms", "plans/s"],
        [["null registry", null_s * 1e3, n_plans / null_s],
         ["instrumented", live_s * 1e3, n_plans / live_s]],
        title=f"Instrumentation overhead ({n_plans} warm-cache plans): "
              f"{overhead:+.2%}",
    )
    return {
        "table": table,
        "n_plans": n_plans,
        "null_seconds": null_s,
        "instrumented_seconds": live_s,
        "overhead": overhead,
    }
