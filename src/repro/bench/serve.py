"""Serving-runtime throughput: per-plan vs batched vs cached inference.

Quantifies what the ``repro.serve`` stack buys over the naive deployment
loop (encode one plan, run one autograd forward, repeat):

- **per-plan** — the legacy path: one encoded batch of size 1 and one
  graph-building forward per plan;
- **micro-batched** — the same single-plan call sites, but routed through
  a :class:`~repro.serve.batching.MicroBatcher` that coalesces them into
  batched, graph-free inference;
- **batched** — ``predict_plans`` on an (uncached) EstimatorService:
  size-sorted chunks through ``model.infer``;
- **cached** — a warm EstimatorService serving the whole workload from
  its fingerprint LRU.
"""

from __future__ import annotations

import time
from typing import List

from repro.bench.cache import get_workload1, pretrain_dace
from repro.bench.config import DEFAULT, BenchScale
from repro.featurize.catcher import catch_plan
from repro.metrics.tables import format_table
from repro.nn import no_grad
from repro.serve import EstimatorService, MicroBatcher


def _legacy_predict_plan(model, encoder, plan) -> float:
    """The seed's per-plan path: encode a batch of one, autograd forward."""
    batch = encoder.encode_batch([catch_plan(plan)], with_labels=False)
    with no_grad():
        pred = model(batch)
    return float(pred.data[0, 0])


def serve_throughput(scale: BenchScale = DEFAULT) -> dict:
    """Plans/sec of the serving paths over a repeated-plan workload."""
    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    base_plans = [sample.plan for sample in base]
    # Tile up to a ~1k-plan workload: a serving process sees the same plan
    # shapes again and again, which is exactly what the cache exploits.
    n_plans = min(1000, max(5 * scale.queries_per_db, 5 * len(base_plans)))
    plans = [base_plans[i % len(base_plans)] for i in range(n_plans)]

    def timed(fn) -> float:
        start = time.perf_counter()
        fn()
        return n_plans / (time.perf_counter() - start)

    # Legacy loop: what every caller paid before the serving runtime.
    single_qps = timed(lambda: [
        _legacy_predict_plan(dace.model, dace.encoder, plan)
        for plan in plans
    ])

    # Micro-batched single-plan traffic (cache off isolates batching).
    uncached = EstimatorService(
        dace.model, dace.encoder,
        batch_size=dace.training.batch_size, cache_size=0,
    )
    batcher = MicroBatcher(uncached, max_batch=dace.training.batch_size)

    def run_micro():
        handles = [batcher.submit(plan) for plan in plans]
        batcher.flush()
        return [handle.result() for handle in handles]

    micro_qps = timed(run_micro)

    # One batched call, still uncached.
    batched_qps = timed(lambda: uncached.predict_plans(plans))

    # Warm cache: every plan served from the fingerprint LRU.
    cached = EstimatorService(
        dace.model, dace.encoder, batch_size=dace.training.batch_size,
        cache_size=max(len(base_plans), 1),
    )
    cached.predict_plans(plans)            # warm
    cached.reset_stats()
    cached_qps = timed(lambda: cached.predict_plans(plans))
    stats = cached.cache_stats

    rows: List[list] = []
    results = {}
    for name, qps in [("per-plan", single_qps),
                      ("micro-batched", micro_qps),
                      ("batched", batched_qps),
                      ("cached", cached_qps)]:
        rows.append([name, qps, qps / single_qps])
        results[name] = {"plans_per_s": qps, "speedup": qps / single_qps}

    table = format_table(
        ["path", "plans/s", "speedup"], rows,
        title=f"Serving throughput ({n_plans} plans, "
              f"batch={dace.training.batch_size}, "
              f"cache hit rate {stats.hit_rate:.0%})",
    )
    return {
        "table": table,
        "results": results,
        "n_plans": n_plans,
        "micro_speedup": micro_qps / single_qps,
        "batched_speedup": batched_qps / single_qps,
        "cached_speedup": cached_qps / single_qps,
        "cache_hit_rate": stats.hit_rate,
    }
