"""Extra ablations beyond the paper's figures.

These probe the design choices DESIGN.md calls out:

- ``ablation_alpha`` — a full sweep of the loss adjuster's alpha (the paper
  only reports the endpoints 0 / 0.5 / 1 of its binary search).
- ``ablation_capacity`` — attention width sweep, supporting the paper's
  "a lightweight transformer suffices" claim.
- ``ensemble_uncertainty`` — the deep-ensemble extension: accuracy of the
  ensemble vs a single DACE, and whether member disagreement predicts
  error (usable as an OOD fallback signal).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.bench.cache import (
    get_workload1,
    get_workload3,
    pretrain_dace,
    pretrain_zeroshot,
    training_sets,
)
from repro.bench.config import DEFAULT, BenchScale
from repro.experiments.registry import cell
from repro.core.ensemble import DACEEnsemble
from repro.core.model import DACEConfig
from repro.core.trainer import TrainingConfig
from repro.metrics import format_table, qerror_summary
from repro.nn.losses import qerror


@cell("alpha")
def ablation_alpha(
    scale: BenchScale = DEFAULT,
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> dict:
    """Median q-error per alpha on the workload-3 test splits."""
    w3 = get_workload3(scale)
    results: Dict[float, Dict[str, float]] = {}
    for alpha in alphas:
        model = pretrain_dace(scale, exclude="imdb", alpha=alpha)
        results[alpha] = {
            split_name: qerror_summary(
                model.predict(split), split.latencies()
            ).median
            for split_name, split in w3.test_splits().items()
        }
    rows = [
        [alpha, by_split["synthetic"], by_split["scale"],
         by_split["job_light"]]
        for alpha, by_split in results.items()
    ]
    table = format_table(
        ["alpha", "synthetic med", "scale med", "job-light med"], rows,
        title="Extra ablation: loss-adjuster alpha sweep",
    )
    return {"results": results, "table": table}


@cell("capacity")
def ablation_capacity(
    scale: BenchScale = DEFAULT,
    attention_dims: Sequence[int] = (32, 64, 128, 256),
) -> dict:
    """Attention width sweep: accuracy and size per d_k."""
    from repro.core.estimator import DACE

    w3 = get_workload3(scale)
    train = training_sets(scale, exclude="imdb")
    results: Dict[int, dict] = {}
    for dim in attention_dims:
        config = DACEConfig(attention_dim=dim, hidden1=dim,
                            hidden2=max(dim // 2, 8))
        model = DACE(
            config=config,
            training=TrainingConfig(epochs=scale.dace_epochs, batch_size=64,
                                    seed=scale.seed),
            seed=scale.seed,
        )
        model.fit(train)
        results[dim] = {
            "size_mb": model.size_mb(),
            **{
                split_name: qerror_summary(
                    model.predict(split), split.latencies()
                ).median
                for split_name, split in w3.test_splits().items()
            },
        }
    rows = [
        [dim, r["size_mb"], r["synthetic"], r["scale"], r["job_light"]]
        for dim, r in results.items()
    ]
    table = format_table(
        ["d_k", "size (MB)", "synthetic med", "scale med", "job-light med"],
        rows,
        title="Extra ablation: attention width (lightweight-model claim)",
    )
    return {"results": results, "table": table}


@cell("cardknowledge")
def cardinality_knowledge(scale: BenchScale = DEFAULT) -> dict:
    """The paper's future work, implemented: DACE vs DACE-D vs DACE-A.

    Fig 12 shows DACE-A (true cardinalities as input) dominating DACE
    (DBMS estimates) and concludes that "improving general knowledge
    accuracy" is the way forward — while noting true cardinalities are
    unobtainable in practice.  DACE-D is the practical middle ground the
    related work points to (DeepDB): plans whose estimates come from
    per-table SPNs that answer correlated conjunctions jointly.  Expected
    ordering: DACE <= DACE-D <= DACE-A in accuracy.
    """
    from repro.cardest.estimator import learned_session
    from repro.catalog.zoo import load_database
    from repro.core.estimator import DACE as DACEEstimator
    from repro.core.trainer import TrainingConfig
    from repro.workloads.dataset import collect_workload
    from repro.workloads.zeroshot import generate_queries

    # Collect workloads whose plans carry SPN-based estimates, for the
    # training databases and the held-out test database.
    names = [n for n in scale.databases if n != "imdb"][:6] + ["imdb"]
    spn_datasets = {}
    for name in names:
        database = load_database(name)
        session = learned_session(database, seed=scale.seed)
        queries = generate_queries(name, scale.queries_per_db)
        spn_datasets[name] = collect_workload(
            database, queries, seed=scale.seed, session=session
        )

    training = TrainingConfig(
        epochs=scale.dace_epochs, batch_size=64, seed=scale.seed,
    )
    train_names = [n for n in names if n != "imdb"]

    dace = pretrain_dace(scale, exclude="imdb", num_training_dbs=6)
    dace_d = DACEEstimator(training=training, seed=scale.seed)
    dace_d.fit([spn_datasets[n] for n in train_names])
    dace_a = pretrain_dace(
        scale, exclude="imdb", num_training_dbs=6, card_source="actual"
    )

    plain_test = get_workload1(scale)["imdb"]
    spn_test = spn_datasets["imdb"]
    results = {
        "DACE": qerror_summary(dace.predict(plain_test),
                               plain_test.latencies()),
        "DACE-D": qerror_summary(dace_d.predict(spn_test),
                                 spn_test.latencies()),
        "DACE-A": qerror_summary(dace_a.predict(plain_test),
                                 plain_test.latencies()),
    }
    rows = [
        [name, summary.median, summary.p90, summary.p95, summary.max]
        for name, summary in results.items()
    ]
    table = format_table(
        ["variant", "median", "90th", "95th", "max"], rows,
        title="Extension (paper future work): cardinality knowledge — "
              "DBMS estimates vs learned SPNs vs true cardinalities",
    )
    return {"results": results, "table": table}


@cell("taxonomy")
def drift_taxonomy(scale: BenchScale = DEFAULT) -> dict:
    """The paper's Fig 1 taxonomy, measured: Drift I–V in one table.

    Within-database models (MSCN, QueryFormer) train once on an IMDB
    workload restricted to four tables; across-database models (Zero-Shot,
    DACE) train leave-IMDB-out.  Each drift scenario then evaluates every
    model:

    - **I — similar templates**: held-out queries from the training
      distribution (same tables, same knobs).
    - **II — new schema**: queries that must touch tables absent from the
      WDM training workload (``movie_keyword``, ``movie_info_idx``).
    - **III — data drift**: the Drift-I statements on IMDB scaled 4x.
    - **IV — across-database**: a workload on ``movielens``.
    - **V — across-more**: the same ``movielens`` statements on machine M2
      (DACE additionally reports its LoRA-tuned variant in ``results``).
    """
    import copy

    from repro.baselines.mscn import MSCNModel
    from repro.baselines.queryformer import QueryFormerModel
    from repro.catalog.zoo import load_database
    from repro.engine.machines import M2
    from repro.sql.generator import QueryGenerator, WorkloadSpec
    from repro.workloads.dataset import collect_workload
    from repro.workloads.zeroshot import generate_queries

    imdb = load_database("imdb")
    seed = scale.seed
    known_tables = ["title", "movie_companies", "cast_info", "movie_info"]
    spec = WorkloadSpec(max_joins=2, max_predicates=3, min_predicates=1)

    train_queries = QueryGenerator(
        imdb, spec, seed=seed, allowed_tables=known_tables
    ).generate_many(scale.w3_train)
    wdm_train = collect_workload(imdb, train_queries, seed=seed)

    count = max(scale.w3_scale, 50)
    drift1_queries = QueryGenerator(
        imdb, spec, seed=seed + 1, allowed_tables=known_tables
    ).generate_many(count)
    drift1 = collect_workload(imdb, drift1_queries, seed=seed)

    new_tables = ["movie_keyword", "movie_info_idx"]
    drift2_queries = [
        q for q in QueryGenerator(
            imdb, WorkloadSpec(max_joins=3, max_predicates=3,
                               min_predicates=1), seed=seed + 2
        ).generate_many(count * 3)
        if set(q.tables) & set(new_tables)
    ][:count]
    drift2 = collect_workload(imdb, drift2_queries, seed=seed)

    scaled_imdb = imdb.scale(4.0, seed=seed)
    drift3 = collect_workload(scaled_imdb, drift1_queries, seed=seed)
    for sample in drift3:
        sample.database_name = "imdb"

    movielens = load_database("movielens")
    drift4_queries = generate_queries("movielens", count)
    drift4 = collect_workload(movielens, drift4_queries, seed=seed)
    drift5 = collect_workload(
        movielens, drift4_queries, machine=M2, seed=seed + 1
    )

    models = {
        "MSCN": MSCNModel(
            imdb, epochs=scale.baseline_epochs, seed=seed
        ).fit(wdm_train),
        "QueryFormer": QueryFormerModel(
            epochs=scale.queryformer_epochs,
            n_layers=scale.queryformer_layers, seed=seed,
        ).fit(wdm_train),
        "Zero-Shot": pretrain_zeroshot(scale, exclude="imdb"),
        "DACE": pretrain_dace(scale, exclude="imdb"),
    }
    scenarios = {
        "I similar templates": drift1,
        "II new schema": drift2,
        "III data drift (4x)": drift3,
        "IV across-database": drift4,
        "V across-more (M2)": drift5,
    }

    def predictions(model, dataset):
        if hasattr(model, "predict_ms"):
            return model.predict_ms(dataset)
        return model.predict(dataset)

    results: Dict[str, Dict[str, float]] = {name: {} for name in models}
    for model_name, model in models.items():
        for scenario_name, dataset in scenarios.items():
            # MSCN cannot featurize another schema's queries at all — the
            # defining WDM failure on Drift IV/V.
            if model_name == "MSCN" and "movielens" in str(
                dataset.database_names()
            ):
                results[model_name][scenario_name] = float("nan")
                continue
            results[model_name][scenario_name] = qerror_summary(
                predictions(model, dataset), dataset.latencies()
            ).median

    # Drift V with LoRA adaptation (the paper's answer to across-more).
    dace_lora = copy.deepcopy(models["DACE"])
    tune = collect_workload(
        imdb, train_queries, machine=M2, seed=seed + 2
    )
    dace_lora.fine_tune_lora(tune, epochs=scale.lora_epochs)
    lora_v = qerror_summary(
        dace_lora.predict(drift5), drift5.latencies()
    ).median

    rows = []
    for model_name, by_scenario in results.items():
        row = [model_name] + [
            by_scenario[name] if not np.isnan(by_scenario[name]) else "n/a"
            for name in scenarios
        ]
        rows.append(row)
    rows.append(["DACE-LoRA", "-", "-", "-", "-", lora_v])
    table = format_table(
        ["model"] + list(scenarios), rows,
        title="Extension: the Fig 1 drift taxonomy, measured "
              "(median q-error per scenario)",
    )
    return {"results": results, "dace_lora_v": lora_v, "table": table}


@cell("apps")
def apps_end_to_end(scale: BenchScale = DEFAULT) -> dict:
    """Downstream payoff: plan selection and scheduling with DACE.

    Plan selection: the optimizer's top-k candidates are re-ranked by a
    leave-IMDB-out DACE; reports total-latency speedup over the native
    choice and the residual gap to the hindsight-optimal candidate.
    Scheduling: FIFO vs DACE-SJF vs oracle-SJF mean flow time on the
    workload-3 synthetic split.
    """
    from repro.apps.plan_selection import PlanSelector
    from repro.apps.scheduling import WorkloadScheduler
    from repro.catalog.zoo import load_database
    from repro.engine.session import EngineSession
    from repro.workloads.zeroshot import COMPLEX_SPEC
    from repro.sql.generator import QueryGenerator

    dace = pretrain_dace(scale, exclude="imdb")
    session = EngineSession(load_database("imdb"), seed=scale.seed)

    generator = QueryGenerator(
        session.database, COMPLEX_SPEC, seed=scale.seed + 77
    )
    queries = [
        q for q in generator.generate_many(scale.w3_scale)
        if 1 <= q.num_joins <= 4
    ]
    selector = PlanSelector(session, dace, candidates=5)
    selection = selector.evaluate_workload(queries)

    w3 = get_workload3(scale)
    scheduler = WorkloadScheduler(workers=4)
    fifo, model_sjf, oracle_sjf = scheduler.compare(
        w3.synthetic, dace.predict(w3.synthetic), "SJF (DACE)"
    )

    rows = [
        ["plan selection", "native optimizer",
         selection.native_latency_ms, "-"],
        ["plan selection", "DACE re-ranked",
         selection.selected_latency_ms,
         f"speedup {selection.speedup:.2f}x"],
        ["plan selection", "oracle candidate",
         selection.oracle_latency_ms,
         f"gap {selection.oracle_gap:.2f}x"],
        ["scheduling", fifo.policy, fifo.mean_flow_time_ms, "-"],
        ["scheduling", model_sjf.policy, model_sjf.mean_flow_time_ms, "-"],
        ["scheduling", oracle_sjf.policy, oracle_sjf.mean_flow_time_ms, "-"],
    ]
    table = format_table(
        ["application", "policy", "total / mean-flow (ms)", "note"], rows,
        title="Extension: end-to-end applications of the cost estimator",
    )
    return {
        "selection": selection,
        "scheduling": {"fifo": fifo, "model": model_sjf,
                       "oracle": oracle_sjf},
        "table": table,
    }


@cell("ensemble")
def ensemble_uncertainty(
    scale: BenchScale = DEFAULT, n_members: int = 3
) -> dict:
    """Ensemble vs single DACE, plus uncertainty-error correlation."""
    w3 = get_workload3(scale)
    train = training_sets(scale, exclude="imdb")
    single = pretrain_dace(scale, exclude="imdb")
    ensemble = DACEEnsemble(
        n_members=n_members,
        training=TrainingConfig(epochs=scale.dace_epochs, batch_size=64),
        seed=scale.seed,
    )
    ensemble.fit(train)

    rows = []
    correlations = {}
    results = {}
    for split_name, split in w3.test_splits().items():
        actual = split.latencies()
        single_summary = qerror_summary(single.predict(split), actual)
        mean, sigma = ensemble.predict_with_uncertainty(split)
        ensemble_summary = qerror_summary(mean, actual)
        errors = np.log(qerror(mean, actual))
        corr = (
            float(np.corrcoef(sigma, errors)[0, 1])
            if np.std(sigma) > 0 and np.std(errors) > 0 else 0.0
        )
        correlations[split_name] = corr
        results[split_name] = {
            "single": single_summary, "ensemble": ensemble_summary,
            "uncertainty_error_corr": corr,
        }
        rows.append([split_name, single_summary.median,
                     ensemble_summary.median, single_summary.p95,
                     ensemble_summary.p95, corr])
    table = format_table(
        ["split", "single med", "ensemble med", "single 95th",
         "ensemble 95th", "sigma/err corr"],
        rows,
        title=f"Extension: deep ensemble of {n_members} DACEs",
    )
    return {"results": results, "table": table}
