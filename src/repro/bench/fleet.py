"""Fleet serving: multi-tenant zipf replay across shard counts.

What sharding buys on this box is *aggregate cache capacity with
affinity*, and this bench measures exactly that.  Every fleet shard
carries a bounded ``(tenant, fingerprint)``-keyed prediction cache; the
consistent-hash ring partitions the keyspace, so N shards hold N times
the working set.  The replay sizes the per-shard cache at a third of the
multi-tenant working set: a single shard thrashes (most requests pay the
full adapter-swap + forward miss path — its throughput *is* cache-miss
throughput), while four shards hold the whole set between them and serve
the steady state warm.  That capacity scaling — not parallel forwards,
which a single-core host cannot grant — is the honest lever, and the
``nocache`` row (both sides with caching disabled, reported but ungated)
makes the distinction visible in the record.

Byte identity comes first: before any timing, every fleet configuration
must answer exactly ``==`` a single :class:`~repro.serve.service.
EstimatorService` with the matching tenant tag activated through a
:class:`~repro.serve.registry.ModelRegistry`, and the timed replay's
outputs are re-checked against the same reference.  A tenant-churn
segment (evict + re-register between passes) must leave answers
unchanged.  The headline ratio uses the interleaved-pairs protocol of
:func:`~repro.bench.serve.serve_concurrency` (drift hits both sides of a
pair and cancels), with the garbage collector paused.
"""

from __future__ import annotations

import copy
import gc
import statistics
import threading
import time
from typing import Dict, List

import numpy as np

from repro.bench.cache import get_workload1, pretrain_dace
from repro.bench.config import DEFAULT, BenchScale
from repro.experiments.registry import cell
from repro.featurize.catcher import catch_plan
from repro.metrics.tables import format_table
from repro.serve import EstimatorService, FleetGateway, ModelRegistry

# Zipf exponents: tenants are strongly skewed (a couple of hot tenants
# carry most traffic), plans within a tenant mildly skewed (so the
# request stream keeps touching the working set's tail and a too-small
# LRU cannot hide behind its hot head).
TENANT_SKEW = 1.3
PLAN_SKEW = 1.05
NUM_TENANTS = 6


class _RegistryView:
    """Minimal estimator surface for a reference ModelRegistry."""

    def __init__(self, model, service) -> None:
        self.model = model
        self.service = service


def _zipf_weights(count: int, skew: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, count + 1) ** skew
    return weights / weights.sum()


def _synth_tenants(base_state: Dict[str, np.ndarray], seed: int):
    """Seeded random LoRA deltas: distinct, cheap, exercise the exact
    register/activate/serve path a fine-tuned adapter set would."""
    rng = np.random.default_rng(seed)
    tenants = {}
    for index in range(NUM_TENANTS):
        tenants[f"tenant{index}"] = {
            name: array + rng.normal(0.0, 0.05, array.shape)
            for name, array in base_state.items()
        }
    return tenants


@cell("serve_fleet")
def serve_fleet(scale: BenchScale = DEFAULT) -> dict:
    """Aggregate throughput of the fleet on a zipf multi-tenant replay.

    Workload: ``NUM_TENANTS`` tenants (synthetic LoRA adapter sets) over
    the fingerprint-unique imdb plans, requests drawn zipf-skewed over
    both axes — hot tenants, cold tenants — replayed closed-loop by
    2x-shards client threads, with a churn segment (evict + re-register)
    between the identity pass and the timed passes.
    """
    dace = pretrain_dace(scale, exclude="imdb")
    base = get_workload1(scale)["imdb"]
    seen, plans = set(), []
    for sample in base:
        fingerprint = catch_plan(sample.plan).fingerprint()
        if fingerprint not in seen:
            seen.add(fingerprint)
            plans.append(sample.plan)
    n_unique = len(plans)
    batch_size = dace.training.batch_size

    # ---------------------------------------------------------------- #
    # Reference: one EstimatorService + registry, tenant tag activated
    # per pass.  Deep-copied model so tenant activations cannot touch
    # the cached pre-trained DACE other benches share.
    # ---------------------------------------------------------------- #
    ref_model = copy.deepcopy(dace.model)
    ref_service = EstimatorService(
        ref_model, dace.encoder, batch_size=batch_size, cache_size=0
    )
    ref_registry = ModelRegistry(_RegistryView(ref_model, ref_service))
    tenants = _synth_tenants(
        ref_registry.adapter_state(ModelRegistry.BASE_TAG), scale.seed
    )
    for tag, state in tenants.items():
        ref_registry.register(tag, state)
    tags = list(tenants)
    reference: Dict[str, np.ndarray] = {}
    for tag in tags:
        ref_registry.activate(tag)
        reference[tag] = ref_service.predict_plans(plans)

    # Zipf request stream over (tenant, plan): the working set is every
    # pair that appears; per-shard capacity is a third of it, so one
    # shard thrashes where four shards' aggregate holds it all.
    rng = np.random.default_rng(scale.seed + 1)
    n_requests = min(600, max(6 * n_unique, 300))
    tenant_ids = rng.choice(
        len(tags), size=n_requests, p=_zipf_weights(len(tags), TENANT_SKEW)
    )
    plan_ids = rng.choice(
        n_unique, size=n_requests, p=_zipf_weights(n_unique, PLAN_SKEW)
    )
    working_set = len({(t, p) for t, p in zip(tenant_ids, plan_ids)})
    shard_cache = max(working_set // 3, 1)

    def build_fleet(shards: int, cache_size: int) -> FleetGateway:
        fleet = FleetGateway(
            dace.model, dace.encoder, shards=shards,
            batch_size=batch_size, cache_size=cache_size,
        )
        for tag, state in tenants.items():
            fleet.register_tenant(tag, state)
        return fleet

    identical_flags: List[bool] = []

    def check_identity(fleet: FleetGateway) -> None:
        for tag in tags:
            got = fleet.predict_plans(plans, tenant=tag)
            identical_flags.append(
                bool(np.array_equal(got, reference[tag]))
            )

    def run_clients(fleet: FleetGateway, clients: int) -> tuple:
        out = [0.0] * n_requests
        barrier = threading.Barrier(clients + 1)

        def client(offset: int) -> None:
            barrier.wait()
            for i in range(offset, n_requests, clients):
                out[i] = fleet.predict_plan(
                    plans[plan_ids[i]], tenant=tags[tenant_ids[i]]
                )

        threads = [
            threading.Thread(target=client, args=(offset,))
            for offset in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        return time.perf_counter() - start, out

    def check_replay(out) -> None:
        expected = np.array([
            reference[tags[t]][p] for t, p in zip(tenant_ids, plan_ids)
        ])
        identical_flags.append(bool(np.array_equal(np.array(out), expected)))

    churn_tag = tags[-1]
    shard_counts = (1, 2, 4)
    rows: List[list] = []
    results: dict = {}
    fleets: Dict[int, FleetGateway] = {}
    gc.collect()
    gc.disable()
    try:
        base_qps = None
        for shards in shard_counts:
            fleet = build_fleet(shards, shard_cache)
            fleets[shards] = fleet
            # Identity before any number is believed — this also warms
            # the fleet caches with the full working set.
            check_identity(fleet)
            # Tenant churn: evict and re-register between passes; the
            # re-registered tenant must answer exactly as before (its
            # cache entries were dropped and recomputed).
            fleet.evict_tenant(churn_tag)
            fleet.register_tenant(churn_tag, tenants[churn_tag])
            identical_flags.append(bool(np.array_equal(
                fleet.predict_plans(plans, tenant=churn_tag),
                reference[churn_tag],
            )))
            clients = 2 * shards
            run_clients(fleet, clients)  # settle memos + queue threads
            best, out = float("inf"), None
            for _ in range(3):
                elapsed, out = run_clients(fleet, clients)
                best = min(best, elapsed)
            check_replay(out)
            stats = fleet.stats()
            qps = n_requests / best
            if base_qps is None:
                base_qps = qps
            rows.append([
                f"shards={shards}", qps, qps / base_qps,
                stats["cache_hit_rate"], stats["shed"],
                "yes" if identical_flags[-1] else "NO",
            ])
            results[f"shards{shards}"] = {
                "plans_per_s": qps,
                "speedup": qps / base_qps,
                "hit_rate": stats["cache_hit_rate"],
                "swaps": stats["swaps"],
                "shed": stats["shed"],
                "bit_identical": identical_flags[-1],
            }

        # Headline: interleaved pairs, 4 shards vs 1, median ratio.
        fleet_1, fleet_4 = fleets[1], fleets[4]
        ratios: List[float] = []
        for _ in range(5):
            best_1 = best_4 = float("inf")
            for _ in range(2):
                elapsed, out = run_clients(fleet_1, 2)
                best_1 = min(best_1, elapsed)
            check_replay(out)
            for _ in range(2):
                elapsed, out = run_clients(fleet_4, 8)
                best_4 = min(best_4, elapsed)
            check_replay(out)
            ratios.append(best_1 / best_4)

        # Caching disabled on both sides: what shard count alone buys on
        # this host (ungated — a single core grants no forward
        # parallelism, and the record should say so rather than hide it).
        nocache_1 = build_fleet(1, 0)
        nocache_4 = build_fleet(4, 0)
        run_clients(nocache_1, 2)
        run_clients(nocache_4, 8)
        nc1, _ = run_clients(nocache_1, 2)
        nc4, _ = run_clients(nocache_4, 8)
        nocache_speedup = nc1 / nc4
        nocache_1.close()
        nocache_4.close()
    finally:
        gc.enable()
        for fleet in fleets.values():
            fleet.close()
    miss_speedup_4 = statistics.median(ratios)

    table = format_table(
        ["fleet", "req/s", "vs 1 shard", "hit rate", "shed",
         "bit-identical"],
        rows,
        title=f"Fleet serving ({n_requests} zipf requests, "
              f"{len(tags)} tenants, working set {working_set} keys, "
              f"{shard_cache} cache entries/shard); paired-median "
              f"4-shard speedup {miss_speedup_4:.2f}x "
              f"(nocache {nocache_speedup:.2f}x)",
    )
    return {
        "table": table,
        "results": results,
        "n_requests": n_requests,
        "n_unique_plans": n_unique,
        "n_tenants": len(tags),
        "working_set": working_set,
        "shard_cache_entries": shard_cache,
        "miss_speedup_4": miss_speedup_4,
        "miss_speedup_ratios": ratios,
        "nocache_speedup_4": nocache_speedup,
        "all_bit_identical": all(identical_flags),
    }
