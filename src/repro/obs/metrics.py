"""Metric primitives: counters, gauges, and streaming histograms.

Everything here is dependency-free and allocation-light so it can sit on
the serving hot path: a counter increment is one integer add, a histogram
observation is one binary search plus three float updates.  Histograms
never store samples — quantiles (p50/p90/p99) are interpolated from
fixed log-spaced bucket counts, so memory stays O(buckets) no matter how
many observations stream through.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

# Log-spaced boundaries, 8 per decade from 1e-7 to 1e5: fine enough that
# interpolated quantiles land within ~15% of the true value, wide enough
# to cover sub-microsecond timers and thousand-plan batch sizes alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 8.0) for exponent in range(-56, 41)
)


class Counter:
    """Monotonically increasing count (events, cache hits, plans served)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Point-in-time value (queue depth, coalescing ratio, cache size)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Streaming distribution: count/sum/min/max plus bucketed quantiles.

    ``observe`` files the value into a fixed log-spaced bucket; ``quantile``
    finds the bucket holding the requested rank and interpolates linearly
    inside it, clamped to the observed min/max so single-observation
    histograms report exact values.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} buckets must be sorted")
        self.name = name
        self.help = help
        self.bounds = bounds                     # upper bound per bucket
        self._counts = [0] * (len(bounds) + 1)   # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self._counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (q in [0, 1]) of everything observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = (self.bounds[index] if index < len(self.bounds)
                        else self._max)
                # Clamp the bucket to the observed range so tight
                # distributions do not smear across the whole bucket.
                low = max(low, self._min)
                high = min(high, self._max)
                if high <= low:
                    return high
                fraction = (rank - cumulative) / bucket_count
                return low + fraction * (high - low)
            cumulative += bucket_count
        return self._max

    def bucket_counts(self) -> List[int]:
        """Per-bucket observation counts (last entry is the overflow)."""
        return list(self._counts)

    def reset(self) -> None:
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def __repr__(self) -> str:
        return (f"Histogram({self.name} count={self._count} "
                f"mean={self.mean:.6g})")
