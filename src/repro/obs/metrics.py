"""Metric primitives: counters, gauges, and streaming histograms.

Everything here is dependency-free and allocation-light so it can sit on
the serving hot path: a counter increment is one integer add under a
per-metric lock, a histogram observation is one binary search plus three
float updates.  Histograms never store samples — quantiles (p50/p90/p99)
are interpolated from fixed log-spaced bucket counts, so memory stays
O(buckets) no matter how many observations stream through.

**Thread safety.**  Every mutation (``inc``/``dec``/``set``/``observe``/
``reset``) is a read-modify-write — ``self._value += amount`` compiles to
a LOAD/ADD/STORE sequence the GIL is free to interleave, so two threads
incrementing concurrently could lose updates.  Each metric therefore
carries its own lock, held only for the few instructions of the update;
single-field reads stay lock-free (a GIL-atomic load of a stable value).
Metric locks are leaves in the serving stack's lock order: no metric ever
calls out while holding one (see docs/architecture.md).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

# Log-spaced boundaries, 8 per decade from 1e-7 to 1e5: fine enough that
# interpolated quantiles land within ~15% of the true value, wide enough
# to cover sub-microsecond timers and thousand-plan batch sizes alike.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 8.0) for exponent in range(-56, 41)
)


def _lockless_state(metric) -> dict:
    """Slot state minus the lock, for pickling/deepcopy of metrics.

    Locks are process-local runtime objects: a copied or unpickled metric
    gets a fresh, unheld one via ``_restore_state``.
    """
    return {
        slot: getattr(metric, slot)
        for slot in metric.__slots__
        if slot != "_lock"
    }


def _restore_state(metric, state: dict) -> None:
    for slot, value in state.items():
        setattr(metric, slot, value)
    metric._lock = threading.Lock()


class Counter:
    """Monotonically increasing count (events, cache hits, plans served)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __getstate__(self) -> dict:
        return _lockless_state(self)

    def __setstate__(self, state: dict) -> None:
        _restore_state(self, state)

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Point-in-time value (queue depth, coalescing ratio, cache size)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def reset(self) -> None:
        self._value = 0.0

    def __getstate__(self) -> dict:
        return _lockless_state(self)

    def __setstate__(self, state: dict) -> None:
        _restore_state(self, state)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """Streaming distribution: count/sum/min/max plus bucketed quantiles.

    ``observe`` files the value into a fixed log-spaced bucket; ``quantile``
    finds the bucket holding the requested rank and interpolates linearly
    inside it, clamped to the observed min/max so single-observation
    histograms report exact values.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} buckets must be sorted")
        self.name = name
        self.help = help
        self.bounds = bounds                     # upper bound per bucket
        self._counts = [0] * (len(bounds) + 1)   # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        bucket = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[bucket] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Batch :meth:`observe`: one lock round trip for the whole batch.

        The hot serving paths resolve whole flushes at once; filing each
        latency individually would pay a lock acquisition per request.
        Bucketing happens outside the lock, so the critical section is
        just the counter updates.
        """
        if not values:
            return
        floats = [float(value) for value in values]
        buckets = [bisect_left(self.bounds, value) for value in floats]
        low, high, total = min(floats), max(floats), sum(floats)
        with self._lock:
            for bucket in buckets:
                self._counts[bucket] += 1
            self._count += len(floats)
            self._sum += total
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (q in [0, 1]) of everything observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = (self.bounds[index] if index < len(self.bounds)
                        else self._max)
                # Clamp the bucket to the observed range so tight
                # distributions do not smear across the whole bucket.
                low = max(low, self._min)
                high = min(high, self._max)
                if high <= low:
                    return high
                fraction = (rank - cumulative) / bucket_count
                return low + fraction * (high - low)
            cumulative += bucket_count
        return self._max

    def bucket_counts(self) -> List[int]:
        """Per-bucket observation counts (last entry is the overflow)."""
        return list(self._counts)

    def __getstate__(self) -> dict:
        return _lockless_state(self)

    def __setstate__(self, state: dict) -> None:
        _restore_state(self, state)

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def __repr__(self) -> str:
        return (f"Histogram({self.name} count={self._count} "
                f"mean={self.mean:.6g})")
