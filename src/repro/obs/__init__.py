"""Observability: metrics, timers, and tracing for the serving runtime.

Dependency-free instrumentation shared by the whole stack:

- :class:`~repro.obs.metrics.Counter` / :class:`~repro.obs.metrics.Gauge`
  / :class:`~repro.obs.metrics.Histogram` — the primitives; histograms
  stream p50/p90/p99 from log-spaced buckets without storing samples;
- :class:`~repro.obs.registry.MetricsRegistry` — a named home for
  metrics plus ``timer()``/``span()`` context managers and a bounded
  span trace;
- exporters — :func:`~repro.obs.export.render_table` (human),
  :func:`~repro.obs.export.to_json_lines` (lossless, round-trips via
  :func:`~repro.obs.export.load_json_lines`), and
  :func:`~repro.obs.export.to_prometheus` (scrape endpoint text);
- :data:`~repro.obs.registry.NULL_REGISTRY` — the no-op twin used to
  measure instrumentation overhead.

The serving stack (`EstimatorService`, `MicroBatcher`) and the `Trainer`
accept a registry and record per-stage timings onto it; ``python -m
repro serve --metrics out.jsonl`` dumps a report and ``python -m repro
obs out.jsonl`` pretty-prints one.
"""

from repro.obs.export import (
    load_json_lines,
    render_table,
    to_json_lines,
    to_prometheus,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SpanRecord",
    "render_table",
    "to_json_lines",
    "load_json_lines",
    "to_prometheus",
]
