"""Exporters: one MetricsRegistry, three wire formats.

- :func:`render_table` — the human-readable report the CLI prints;
- :func:`to_json_lines` / :func:`load_json_lines` — a lossless
  round-trippable dump (one JSON object per metric, plus span records),
  the format ``repro serve --metrics`` writes and ``repro obs`` reads;
- :func:`to_prometheus` — Prometheus text exposition format, so a real
  scrape endpoint only needs to serve this string.
"""

from __future__ import annotations

import json
import math
from typing import List

from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.registry import MetricsRegistry, SpanRecord

QUANTILES = (0.5, 0.9, 0.99)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


# ---------------------------------------------------------------------- #
# Human table
# ---------------------------------------------------------------------- #
def render_table(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Aligned plain-text report: counters, gauges, then histograms."""
    counters = [m for m in registry if isinstance(m, Counter)]
    gauges = [m for m in registry if isinstance(m, Gauge)]
    histograms = [m for m in registry if isinstance(m, Histogram)]

    lines: List[str] = [f"== {title} =="]
    if counters:
        width = max(len(m.name) for m in counters)
        lines.append("-- counters --")
        for m in counters:
            lines.append(f"{m.name:<{width}}  {m.value}")
    if gauges:
        width = max(len(m.name) for m in gauges)
        lines.append("-- gauges --")
        for m in gauges:
            lines.append(f"{m.name:<{width}}  {_fmt(m.value)}")
    if histograms:
        width = max(len(m.name) for m in histograms)
        lines.append("-- histograms --")
        header = (f"{'name':<{width}}  {'count':>8} {'mean':>10} "
                  f"{'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}")
        lines.append(header)
        for m in histograms:
            lines.append(
                f"{m.name:<{width}}  {m.count:>8} {_fmt(m.mean):>10} "
                f"{_fmt(m.quantile(0.5)):>10} {_fmt(m.quantile(0.9)):>10} "
                f"{_fmt(m.quantile(0.99)):>10} {_fmt(m.max):>10}"
            )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# JSON lines (round-trippable)
# ---------------------------------------------------------------------- #
def to_json_lines(registry: MetricsRegistry) -> str:
    """One JSON object per line: every metric, then every trace span."""
    lines: List[str] = []
    for metric in registry:
        if isinstance(metric, Counter):
            record = {"type": "counter", "name": metric.name,
                      "help": metric.help, "value": metric.value}
        elif isinstance(metric, Gauge):
            record = {"type": "gauge", "name": metric.name,
                      "help": metric.help, "value": metric.value}
        else:
            record = {
                "type": "histogram", "name": metric.name,
                "help": metric.help, "count": metric.count,
                "sum": metric.sum, "min": metric.min, "max": metric.max,
                "bounds": list(metric.bounds),
                "counts": metric.bucket_counts(),
            }
        lines.append(json.dumps(record))
    for span in registry.trace:
        lines.append(json.dumps({
            "type": "span", "name": span.name, "start": span.start,
            "duration": span.duration, "depth": span.depth,
        }))
    return "\n".join(lines)


def load_json_lines(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_json_lines` output."""
    registry = MetricsRegistry()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "counter":
            registry.counter(record["name"], record.get("help", "")).inc(
                int(record["value"])
            )
        elif kind == "gauge":
            registry.gauge(record["name"], record.get("help", "")).set(
                record["value"]
            )
        elif kind == "histogram":
            histogram = registry.histogram(
                record["name"], record.get("help", ""),
                buckets=record["bounds"],
            )
            histogram._counts = [int(c) for c in record["counts"]]
            histogram._count = int(record["count"])
            histogram._sum = float(record["sum"])
            count = histogram._count
            histogram._min = float(record["min"]) if count else math.inf
            histogram._max = float(record["max"]) if count else -math.inf
        elif kind == "span":
            registry._trace.append(SpanRecord(
                name=record["name"], start=float(record["start"]),
                duration=float(record["duration"]),
                depth=int(record["depth"]),
            ))
        else:
            raise ValueError(f"unknown metrics record type {kind!r}")
    return registry


# ---------------------------------------------------------------------- #
# Prometheus text exposition format
# ---------------------------------------------------------------------- #
def _prom_name(name: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text format (counters, gauges, cumulative buckets)."""
    lines: List[str] = []
    for metric in registry:
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(metric.value)}")
        else:
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            counts = metric.bucket_counts()
            for bound, bucket_count in zip(metric.bounds, counts):
                cumulative += bucket_count
                lines.append(
                    f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
