"""MetricsRegistry: one named home for every counter, gauge, and timer.

A registry is a flat namespace of metrics (``serve.encode_seconds``,
``batch.flush_size``, ...) plus a bounded span trace.  Components create
metrics lazily through ``counter``/``gauge``/``histogram`` — repeated
calls return the same object, so a service and the batcher in front of it
can share one registry and one report.

Timing comes in two flavours:

- ``timer(name)`` — context manager that records elapsed wall-time
  (seconds) into the histogram ``name``;
- ``span(name)`` — ``timer`` plus a trace record (name, start offset,
  duration, nesting depth) appended to a bounded ring buffer, so the
  last N stage executions can be reconstructed in order.

``NULL_REGISTRY`` is a shared no-op implementation with the same API: a
component handed it pays (almost) nothing, which is what the
instrumentation-overhead benchmark compares against.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.metrics import Counter, Gauge, Histogram

Metric = Union[Counter, Gauge, Histogram]

DEFAULT_TRACE_CAPACITY = 512


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: where a stage ran inside the trace timeline."""

    name: str
    start: float          # seconds since the registry was created
    duration: float       # seconds
    depth: int            # nesting level at entry (0 = top-level)


class _Timer:
    """Context manager recording wall-time into a histogram."""

    __slots__ = ("_histogram", "_registry", "_trace", "_start", "last")

    def __init__(self, histogram: Histogram,
                 registry: Optional["MetricsRegistry"] = None) -> None:
        self._histogram = histogram
        self._registry = registry        # set only for span(): enables trace
        self._start = 0.0
        self.last = 0.0

    def __enter__(self) -> "_Timer":
        if self._registry is not None:
            self._registry._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self.last = elapsed
        self._histogram.observe(elapsed)
        if self._registry is not None:
            registry = self._registry
            registry._depth -= 1
            # deque.append with a maxlen is a single GIL-atomic op, so
            # concurrent spans interleave but never corrupt the ring.
            registry._trace.append(SpanRecord(
                name=self._histogram.name,
                start=self._start - registry._epoch,
                duration=elapsed,
                depth=registry._depth,
            ))


class MetricsRegistry:
    """Named metrics plus a bounded span trace."""

    def __init__(self, trace_capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()
        self._trace: Deque[SpanRecord] = deque(maxlen=trace_capacity)
        self._epoch = time.perf_counter()
        # Span nesting depth is a per-thread notion: two threads timing
        # stages concurrently are not nested inside each other.
        self._local = threading.local()
        self._create_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks and thread-locals are process-local runtime state: a
        # copied/unpickled registry gets fresh ones (span depth resets).
        state = self.__dict__.copy()
        del state["_create_lock"]
        del state["_local"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._local = threading.local()
        self._create_lock = threading.Lock()

    @property
    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @_depth.setter
    def _depth(self, value: int) -> None:
        self._local.depth = value

    # ------------------------------------------------------------------ #
    # Metric creation (get-or-create by name)
    # ------------------------------------------------------------------ #
    def _get_or_create(self, name: str, kind, **kwargs) -> Metric:
        # Lock-free fast path: once created, a metric is never replaced,
        # so a plain read either sees it or falls through to the locked
        # create (which re-checks).
        metric = self._metrics.get(name)
        if metric is None:
            with self._create_lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(name, Histogram, help=help, buckets=buckets)

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #
    def timer(self, name: str, help: str = "") -> _Timer:
        """Record elapsed seconds into histogram ``name`` on exit."""
        return _Timer(self.histogram(name, help=help))

    def span(self, name: str, help: str = "") -> _Timer:
        """``timer`` that also appends a :class:`SpanRecord` to the trace."""
        return _Timer(self.histogram(name, help=help), registry=self)

    @property
    def trace(self) -> List[SpanRecord]:
        """The most recent completed spans, oldest first."""
        return list(self._trace)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def as_dict(self) -> Dict[str, Metric]:
        return dict(self._metrics)

    def reset(self) -> None:
        """Zero every metric and drop the trace (names stay registered)."""
        for metric in self._metrics.values():
            metric.reset()
        self._trace.clear()


# ---------------------------------------------------------------------- #
# Null objects: same API, no work — the uninstrumented baseline.
# ---------------------------------------------------------------------- #
class _NullMetric:
    """Accepts every Counter/Gauge/Histogram call and does nothing."""

    __slots__ = ()
    name = "null"
    help = ""
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def quantile(self, q):
        return 0.0

    def bucket_counts(self):
        return []

    def reset(self):
        pass


class _NullTimer:
    __slots__ = ()
    last = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        pass


class NullRegistry(MetricsRegistry):
    """A registry whose metrics and timers are shared no-ops."""

    _METRIC = _NullMetric()
    _TIMER = _NullTimer()

    def __init__(self) -> None:
        super().__init__(trace_capacity=1)

    def counter(self, name: str, help: str = ""):
        return self._METRIC

    def gauge(self, name: str, help: str = ""):
        return self._METRIC

    def histogram(self, name: str, help: str = "", buckets=None):
        return self._METRIC

    def timer(self, name: str, help: str = ""):
        return self._TIMER

    def span(self, name: str, help: str = ""):
        return self._TIMER


NULL_REGISTRY = NullRegistry()
