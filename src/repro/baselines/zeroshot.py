"""Zero-Shot (Hilprecht & Binnig, VLDB 2022) — the across-database baseline.

Transforms the query plan into a directed graph and learns **node-type-
specific MLPs**; inference propagates messages bottom-up: a node's hidden
state is an MLP (chosen by its node type) of its own features concatenated
with the sum of its children's hidden states.  A readout MLP on the root
predicts log-latency.  Trained on the root loss only.

Faithful simplifications: the original's per-feature embeddings of data
characteristics (columns, literals) are replaced by the extended node
encoding our substrate exposes (node type + scaled DBMS estimates + the
workload-dependent width/predicate/literal features); the message function
and training protocol are unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import CostEstimatorBase
from repro.baselines.common import TreeLevelBatch, build_tree_levels
from repro.engine.plan import NODE_TYPES
from repro.featurize.catcher import CaughtPlan, catch_plan
from repro.featurize.encoder import PlanEncoder
from repro.nn import Adam, Module, Tensor, no_grad
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import log_qerror_loss
from repro.workloads.dataset import PlanDataset


class _TypedMessagePassing(Module):
    """Shared machinery: per-node-type MLPs applied level by level."""

    def __init__(self, input_dim: int, hidden: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden = hidden
        self.type_mlps = [
            Sequential(
                Linear(input_dim + hidden, hidden, rng=rng),
                ReLU(),
                Linear(hidden, hidden, rng=rng),
                ReLU(),
            )
            for _ in NODE_TYPES
        ]

    def propagate(self, batch: TreeLevelBatch) -> Tensor:
        """Bottom-up message passing; returns root hidden states (B, hidden)."""
        deeper_hidden: Optional[Tensor] = None
        for level in batch.levels:
            n = level.num_nodes
            if deeper_hidden is None or level.child_sum is None:
                child_agg = Tensor(np.zeros((n, self.hidden)))
            else:
                child_agg = Tensor(level.child_sum) @ deeper_hidden
            inputs = Tensor.concat(
                [Tensor(level.features), child_agg], axis=1
            )
            # Run each node-type group through its own MLP, then restore
            # the level's row order (differentiable gather).
            groups: List[Tensor] = []
            group_rows: List[np.ndarray] = []
            for type_id in np.unique(level.node_type_ids):
                rows = np.nonzero(level.node_type_ids == type_id)[0]
                groups.append(self.type_mlps[int(type_id)](inputs[rows]))
                group_rows.append(rows)
            stacked = Tensor.concat(groups, axis=0)
            inverse = np.argsort(np.concatenate(group_rows))
            deeper_hidden = stacked[inverse]
        return deeper_hidden[batch.root_order]


class _ZeroShotNet(_TypedMessagePassing):
    def __init__(self, input_dim: int, hidden: int,
                 rng: np.random.Generator) -> None:
        super().__init__(input_dim, hidden, rng)
        self.readout = Sequential(
            Linear(hidden, hidden // 2, rng=rng),
            ReLU(),
            Linear(hidden // 2, 1, rng=rng),
        )

    def forward(self, batch: TreeLevelBatch) -> Tensor:
        roots = self.propagate(batch)
        out = self.readout(roots)
        return out.reshape(out.shape[0])

    def embed(self, batch: TreeLevelBatch) -> np.ndarray:
        return self.propagate(batch).data.copy()


class ZeroShotModel(CostEstimatorBase):
    """The Zero-Shot cost model with the fit/predict interface."""

    name = "Zero-Shot"

    def __init__(
        self,
        hidden: int = 128,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Zero-Shot's original featurization is far richer than DACE's
        # 18-dim encoding; the extra (workload-dependent) features stand
        # in for that.
        self.encoder = PlanEncoder(extra_features=True)
        self.net = _ZeroShotNet(self.encoder.dim, hidden, rng)

    # ------------------------------------------------------------------ #
    def _batches(self, plans: Sequence[CaughtPlan], rng: np.random.Generator):
        order = sorted(range(len(plans)), key=lambda i: plans[i].num_nodes)
        chunks = [
            [plans[i] for i in order[s:s + self.batch_size]]
            for s in range(0, len(order), self.batch_size)
        ]
        rng.shuffle(chunks)
        return chunks

    def fit(self, train: PlanDataset) -> "ZeroShotModel":
        plans = [catch_plan(s.plan) for s in train]
        if not self.encoder.is_fit:
            self.encoder.fit(plans)
        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.net.trainable_parameters(), lr=self.lr)
        for _ in range(self.epochs):
            for chunk in self._batches(plans, rng):
                batch = build_tree_levels(chunk, self.encoder)
                labels = np.array([
                    np.log(max(p.actual_times[0], 1e-3)) for p in chunk
                ])
                optimizer.zero_grad()
                pred = self.net(batch)
                loss = log_qerror_loss(pred, labels)
                loss.backward()
                optimizer.step()
        return self

    def predict_ms(self, test: PlanDataset) -> np.ndarray:
        plans = [catch_plan(s.plan) for s in test]
        out = np.empty(len(plans))
        with no_grad():
            for start in range(0, len(plans), self.batch_size):
                chunk = plans[start:start + self.batch_size]
                batch = build_tree_levels(chunk, self.encoder, with_labels=False)
                out[start:start + len(chunk)] = self.net(batch).data
        return np.exp(out)

    def embed_dataset(self, dataset: PlanDataset) -> np.ndarray:
        """Root hidden states (for the paper's discussion of ZS as encoder)."""
        plans = [catch_plan(s.plan) for s in dataset]
        outs = []
        with no_grad():
            for start in range(0, len(plans), self.batch_size):
                chunk = plans[start:start + self.batch_size]
                batch = build_tree_levels(chunk, self.encoder, with_labels=False)
                outs.append(self.net.embed(batch))
        return np.concatenate(outs, axis=0)

    def num_parameters(self) -> int:
        return self.net.num_parameters()
