"""Baseline cost-estimation models (paper Sec. V, "Baselines").

Within-database models (WDMs):

- :class:`~repro.baselines.mscn.MSCNModel` — query-driven set-convolution.
- :class:`~repro.baselines.qppnet.QPPNetModel` — per-node-type neural units
  evaluated bottom-up, trained on every sub-plan (information redundancy).
- :class:`~repro.baselines.tpool.TPoolModel` — tree pooling with multi-task
  (cost + cardinality) heads.
- :class:`~repro.baselines.queryformer.QueryFormerModel` — an 8-layer
  transformer with height embeddings, tree-bias attention, and a super node.

Across-database models (ADMs):

- :class:`~repro.baselines.zeroshot.ZeroShotModel` — node-type-specific
  MLPs with bottom-up message passing.

Non-learned:

- :class:`~repro.baselines.postgres.PostgresCostBaseline` — a linear
  correction of the optimizer's cost (the paper's "PostgreSQL" rows).

Knowledge integration (paper eq. 9):

- :class:`~repro.baselines.hybrid.DACEMSCNModel`,
  :class:`~repro.baselines.hybrid.DACEQueryFormerModel` — WDMs consuming a
  frozen pre-trained DACE's plan embeddings.
"""

from repro.baselines.base import CostEstimatorBase
from repro.baselines.postgres import PostgresCostBaseline
from repro.baselines.mscn import MSCNModel
from repro.baselines.zeroshot import ZeroShotModel
from repro.baselines.qppnet import QPPNetModel
from repro.baselines.tpool import TPoolModel
from repro.baselines.queryformer import QueryFormerModel
from repro.baselines.hybrid import DACEMSCNModel, DACEQueryFormerModel

__all__ = [
    "CostEstimatorBase",
    "PostgresCostBaseline",
    "MSCNModel",
    "ZeroShotModel",
    "QPPNetModel",
    "TPoolModel",
    "QueryFormerModel",
    "DACEMSCNModel",
    "DACEQueryFormerModel",
]
