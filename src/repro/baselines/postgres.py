"""The "PostgreSQL" baseline: a linear correction of the optimizer cost.

The paper (Sec. V-B): "For PostgreSQL, the estimated cost is not in the same
units as the execution time, so we processed it with a linear model as the
execution time predicted by PostgreSQL."  This is that linear model: a
log-log least-squares fit from the plan's total estimated cost to latency.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CostEstimatorBase, log_labels
from repro.workloads.dataset import PlanDataset


class PostgresCostBaseline(CostEstimatorBase):
    """latency ≈ exp(a * log(cost + 1) + b), fit by least squares."""

    name = "PostgreSQL"

    def __init__(self) -> None:
        self.coefficients: np.ndarray | None = None

    @staticmethod
    def _design(costs: np.ndarray) -> np.ndarray:
        return np.vstack([np.log1p(costs), np.ones_like(costs)]).T

    def fit(self, train: PlanDataset) -> "PostgresCostBaseline":
        if len(train) < 2:
            raise ValueError("need at least 2 samples to fit the correction")
        design = self._design(train.est_costs())
        self.coefficients, *_ = np.linalg.lstsq(
            design, log_labels(train), rcond=None
        )
        return self

    def predict_ms(self, test: PlanDataset) -> np.ndarray:
        if self.coefficients is None:
            raise RuntimeError("baseline must be fit before predicting")
        return np.exp(self._design(test.est_costs()) @ self.coefficients)

    def num_parameters(self) -> int:
        return 2
