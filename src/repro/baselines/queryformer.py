"""QueryFormer (Zhao, VLDB 2022).

A tree transformer over the query plan with the original's three structural
devices:

- **height embeddings** added to every node's input projection,
- **tree-bias attention**: a learnable scalar per node-pair tree distance
  added to the attention scores (the ``b_d`` DACE deliberately drops),
- a **super node** attached to every node; the prediction is read out from
  the super node's final state.

Eight encoder layers as in the paper's description, trained on the root
latency.  The hybrid variant accepts an external context vector that is
concatenated into the readout (used for DACE-QueryFormer knowledge
integration).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import CostEstimatorBase
from repro.featurize.catcher import CaughtPlan, catch_plan
from repro.featurize.encoder import LABEL_EPS_MS, PlanEncoder
from repro.nn import Adam, Module, Parameter, Tensor, no_grad
from repro.nn.attention import multi_head_self_attention
from repro.nn.layers import LayerNorm, Linear, ReLU, Sequential
from repro.nn.losses import log_qerror_loss
from repro.workloads.dataset import PlanDataset

MAX_DISTANCE_BUCKET = 8     # tree distances 0..7, clipped
SUPER_BUCKET = MAX_DISTANCE_BUCKET        # super-node <-> anything
NUM_BUCKETS = MAX_DISTANCE_BUCKET + 1
MAX_HEIGHT = 24
_NEG_INF = -1e9


class _QFBatch:
    """Padded QueryFormer inputs with a super node at position 0."""

    def __init__(self, plans: Sequence[CaughtPlan], encoder: PlanEncoder):
        batch = len(plans)
        n_max = max(p.num_nodes for p in plans) + 1  # +1 super node
        self.features = np.zeros((batch, n_max, encoder.dim))
        self.heights = np.zeros((batch, n_max), dtype=np.int64)
        self.buckets = np.zeros((batch, n_max, n_max), dtype=np.int64)
        self.valid = np.zeros((batch, n_max), dtype=bool)
        self.labels = np.zeros(batch)
        for index, plan in enumerate(plans):
            n = plan.num_nodes
            self.features[index, 1:n + 1] = encoder.encode_plan(plan)
            self.heights[index, 1:n + 1] = np.minimum(
                plan.heights + 1, MAX_HEIGHT - 1
            )
            distances = np.minimum(
                plan.distance_matrix(), MAX_DISTANCE_BUCKET - 1
            )
            self.buckets[index, 1:n + 1, 1:n + 1] = distances
            self.buckets[index, 0, :] = SUPER_BUCKET
            self.buckets[index, :, 0] = SUPER_BUCKET
            self.valid[index, : n + 1] = True
            if plan.actual_times is not None:
                self.labels[index] = np.log(
                    max(plan.actual_times[0], LABEL_EPS_MS)
                )
        # Attention visibility: valid query position -> valid key positions;
        # padded rows see only themselves (finite softmax rows).
        visible = self.valid[:, :, None] & self.valid[:, None, :]
        eye = np.eye(n_max, dtype=bool)[None]
        self.attention_ok = visible | eye


class _EncoderLayer(Module):
    def __init__(self, d_model: int, d_ff: int, num_heads: int,
                 rng: np.random.Generator):
        super().__init__()
        self.d_model = d_model
        self.num_heads = num_heads
        self.w_q = Linear(d_model, d_model, rng=rng, bias=False)
        self.w_k = Linear(d_model, d_model, rng=rng, bias=False)
        self.w_v = Linear(d_model, d_model, rng=rng, bias=False)
        self.w_o = Linear(d_model, d_model, rng=rng)
        self.bias = Parameter(np.zeros(NUM_BUCKETS))  # tree-bias b_d
        self.ln1 = LayerNorm(d_model)
        self.ln2 = LayerNorm(d_model)
        self.ffn = Sequential(
            Linear(d_model, d_ff, rng=rng), ReLU(),
            Linear(d_ff, d_model, rng=rng),
        )

    def forward(self, x: Tensor, buckets: np.ndarray,
                attention_ok: np.ndarray) -> Tensor:
        attended = multi_head_self_attention(
            self.w_q(x), self.w_k(x), self.w_v(x),
            num_heads=self.num_heads,
            mask=attention_ok,
            bias=self.bias[buckets],
        )
        x = self.ln1(x + self.w_o(attended))
        return self.ln2(x + self.ffn(x))


class _QueryFormerNet(Module):
    def __init__(self, input_dim: int, d_model: int, d_ff: int,
                 n_layers: int, context_dim: int, num_heads: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_proj = Linear(input_dim, d_model, rng=rng)
        self.height_embedding = Parameter(
            rng.normal(0.0, 0.02, (MAX_HEIGHT, d_model))
        )
        self.super_embedding = Parameter(rng.normal(0.0, 0.02, (d_model,)))
        self.layers = [
            _EncoderLayer(d_model, d_ff, num_heads, rng)
            for _ in range(n_layers)
        ]
        self.readout = Sequential(
            Linear(d_model + context_dim, d_model, rng=rng), ReLU(),
            Linear(d_model, 1, rng=rng),
        )

    def encode(self, batch: _QFBatch) -> Tensor:
        """Final super-node states, shape (B, d_model)."""
        x = self.input_proj(Tensor(batch.features))
        x = x + self.height_embedding[batch.heights]
        super_mask = np.zeros(batch.features.shape[:2] + (1,))
        super_mask[:, 0, 0] = 1.0
        x = x + Tensor(super_mask) * self.super_embedding
        for layer in self.layers:
            x = layer(x, batch.buckets, batch.attention_ok)
        return x[:, 0, :]

    def forward(self, batch: _QFBatch,
                context: Optional[np.ndarray] = None) -> Tensor:
        pooled = self.encode(batch)
        if context is not None:
            pooled = Tensor.concat([pooled, Tensor(context)], axis=1)
        out = self.readout(pooled)
        return out.reshape(out.shape[0])


class QueryFormerModel(CostEstimatorBase):
    """QueryFormer with the fit/predict interface."""

    name = "QueryFormer"

    def __init__(
        self,
        d_model: int = 64,
        d_ff: int = 256,
        n_layers: int = 8,
        num_heads: int = 4,
        context_dim: int = 0,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 5e-4,
        seed: int = 0,
    ) -> None:
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.context_dim = context_dim
        self.encoder = PlanEncoder(extra_features=True)
        self.net = _QueryFormerNet(
            self.encoder.dim, d_model, d_ff, n_layers, context_dim,
            num_heads, np.random.default_rng(seed),
        )

    # ------------------------------------------------------------------ #
    def _chunks(self, count: int):
        for start in range(0, count, self.batch_size):
            yield start, min(start + self.batch_size, count)

    def fit(
        self,
        train: PlanDataset,
        context: Optional[np.ndarray] = None,
    ) -> "QueryFormerModel":
        if self.context_dim and context is None:
            raise ValueError("model was built with context_dim but none given")
        plans = [catch_plan(s.plan) for s in train]
        if not self.encoder.is_fit:
            self.encoder.fit(plans)
        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.net.trainable_parameters(), lr=self.lr)
        order = sorted(range(len(plans)), key=lambda i: plans[i].num_nodes)
        for _ in range(self.epochs):
            starts = list(self._chunks(len(plans)))
            rng.shuffle(starts)
            for start, stop in starts:
                rows = order[start:stop]
                chunk = [plans[i] for i in rows]
                batch = _QFBatch(chunk, self.encoder)
                ctx = context[rows] if context is not None else None
                optimizer.zero_grad()
                pred = self.net(batch, ctx)
                loss = log_qerror_loss(pred, batch.labels)
                loss.backward()
                optimizer.step()
        return self

    def predict_ms(
        self,
        test: PlanDataset,
        context: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if self.context_dim and context is None:
            raise ValueError("model was built with context_dim but none given")
        plans = [catch_plan(s.plan) for s in test]
        out = np.empty(len(plans))
        with no_grad():
            for start, stop in self._chunks(len(plans)):
                chunk = plans[start:stop]
                batch = _QFBatch(chunk, self.encoder)
                ctx = context[start:stop] if context is not None else None
                out[start:stop] = self.net(batch, ctx).data
        return np.exp(out)

    def num_parameters(self) -> int:
        return self.net.num_parameters()
