"""QPPNet (Marcus & Papaemmanouil, VLDB 2019).

Plan-structured neural units: one small network per node type.  Each unit
consumes the node's features concatenated with the *data vectors* of its
(up to two) children and outputs a data vector plus a latency prediction.
The loss is taken on **every** node's latency with equal weight — the
"information redundancy" the paper's loss adjuster fixes — and inference is
inherently sequential in tree depth because parents wait for children.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import CostEstimatorBase
from repro.baselines.common import TreeLevelBatch, build_tree_levels
from repro.engine.plan import NODE_TYPES
from repro.featurize.catcher import CaughtPlan, catch_plan
from repro.featurize.encoder import PlanEncoder
from repro.nn import Adam, Module, Tensor, no_grad
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import log_qerror_loss
from repro.workloads.dataset import PlanDataset


class _QPPNetUnits(Module):
    """Per-node-type units emitting (data vector, latency) jointly."""

    def __init__(self, input_dim: int, hidden: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden = hidden
        input_dim = input_dim + 2 * hidden  # own features + 2 child slots
        self.units = [
            Sequential(
                Linear(input_dim, hidden, rng=rng),
                ReLU(),
                Linear(hidden, hidden + 1, rng=rng),
            )
            for _ in NODE_TYPES
        ]

    def forward(self, batch: TreeLevelBatch):
        """Returns (per-level predictions, root predictions)."""
        deeper_hidden: Optional[Tensor] = None
        level_preds: List[Tensor] = []
        for level in batch.levels:
            n = level.num_nodes
            if deeper_hidden is None or not level.child_slot:
                child0 = Tensor(np.zeros((n, self.hidden)))
                child1 = Tensor(np.zeros((n, self.hidden)))
            else:
                child0 = Tensor(level.child_slot[0]) @ deeper_hidden
                child1 = Tensor(level.child_slot[1]) @ deeper_hidden
            inputs = Tensor.concat(
                [Tensor(level.features), child0, child1], axis=1
            )
            groups: List[Tensor] = []
            group_rows: List[np.ndarray] = []
            for type_id in np.unique(level.node_type_ids):
                rows = np.nonzero(level.node_type_ids == type_id)[0]
                groups.append(self.units[int(type_id)](inputs[rows]))
                group_rows.append(rows)
            stacked = Tensor.concat(groups, axis=0)
            inverse = np.argsort(np.concatenate(group_rows))
            outputs = stacked[inverse]
            deeper_hidden = outputs[:, : self.hidden].relu()
            level_preds.append(outputs[:, self.hidden])
        roots = level_preds[-1][batch.root_order]
        return level_preds, roots


class QPPNetModel(CostEstimatorBase):
    """QPPNet with the fit/predict interface (sub-plan supervised)."""

    name = "QPPNet"

    def __init__(
        self,
        hidden: int = 128,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.encoder = PlanEncoder(extra_features=True)
        self.net = _QPPNetUnits(
            self.encoder.dim, hidden, np.random.default_rng(seed)
        )

    def _batches(self, plans: Sequence[CaughtPlan], rng: np.random.Generator):
        order = sorted(range(len(plans)), key=lambda i: plans[i].num_nodes)
        chunks = [
            [plans[i] for i in order[s:s + self.batch_size]]
            for s in range(0, len(order), self.batch_size)
        ]
        rng.shuffle(chunks)
        return chunks

    def fit(self, train: PlanDataset) -> "QPPNetModel":
        plans = [catch_plan(s.plan) for s in train]
        if not self.encoder.is_fit:
            self.encoder.fit(plans)
        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.net.trainable_parameters(), lr=self.lr)
        for _ in range(self.epochs):
            for chunk in self._batches(plans, rng):
                batch = build_tree_levels(chunk, self.encoder)
                optimizer.zero_grad()
                level_preds, _ = self.net(batch)
                # Equal-weight loss on every sub-plan (QPPNet's protocol).
                losses = []
                for level, pred in zip(batch.levels, level_preds):
                    losses.append(
                        log_qerror_loss(pred, level.labels_log)
                        * level.num_nodes
                    )
                total_nodes = sum(l.num_nodes for l in batch.levels)
                loss = losses[0]
                for extra in losses[1:]:
                    loss = loss + extra
                loss = loss * (1.0 / total_nodes)
                loss.backward()
                optimizer.step()
        return self

    def predict_ms(self, test: PlanDataset) -> np.ndarray:
        plans = [catch_plan(s.plan) for s in test]
        out = np.empty(len(plans))
        with no_grad():
            for start in range(0, len(plans), self.batch_size):
                chunk = plans[start:start + self.batch_size]
                batch = build_tree_levels(chunk, self.encoder, with_labels=False)
                _, roots = self.net(batch)
                out[start:start + len(chunk)] = roots.data
        return np.exp(out)

    def num_parameters(self) -> int:
        return self.net.num_parameters()
