"""Knowledge integration: DACE as a pre-trained encoder for WDMs (eq. 9).

``DACE-MSCN`` and ``DACE-QueryFormer`` wrap the corresponding WDM and a
*frozen*, pre-trained DACE.  At train and inference time the DACE embedding
``w_E`` (the 64-dim MLP hidden state of the plan's root) is computed for
every plan and concatenated into the WDM's final layer input.  The WDM
trains normally; DACE's weights never change.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import CostEstimatorBase
from repro.baselines.mscn import MSCNModel
from repro.baselines.queryformer import QueryFormerModel
from repro.catalog.datagen import Database
from repro.core.estimator import DACE
from repro.workloads.dataset import PlanDataset


class DACEMSCNModel(CostEstimatorBase):
    """MSCN + frozen DACE plan embeddings."""

    name = "DACE-MSCN"

    def __init__(
        self,
        database: Database,
        dace: DACE,
        hidden: int = 128,
        epochs: int = 40,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.dace = dace
        self.mscn = MSCNModel(
            database,
            hidden=hidden,
            context_dim=dace.embedding_dim,
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            seed=seed,
        )

    def fit(self, train: PlanDataset) -> "DACEMSCNModel":
        context = self.dace.embed_dataset(train)
        self.mscn.fit(train, context=context)
        return self

    def predict_ms(self, test: PlanDataset) -> np.ndarray:
        context = self.dace.embed_dataset(test)
        return self.mscn.predict_ms(test, context=context)

    def num_parameters(self) -> int:
        # The WDM's own parameters plus the frozen encoder it must ship with.
        return self.mscn.num_parameters() + self.dace.num_parameters()


class DACEQueryFormerModel(CostEstimatorBase):
    """QueryFormer + frozen DACE plan embeddings."""

    name = "DACE-QueryFormer"

    def __init__(
        self,
        dace: DACE,
        d_model: int = 64,
        n_layers: int = 8,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 5e-4,
        seed: int = 0,
    ) -> None:
        self.dace = dace
        self.queryformer = QueryFormerModel(
            d_model=d_model,
            n_layers=n_layers,
            context_dim=dace.embedding_dim,
            epochs=epochs,
            batch_size=batch_size,
            lr=lr,
            seed=seed,
        )

    def fit(self, train: PlanDataset) -> "DACEQueryFormerModel":
        context = self.dace.embed_dataset(train)
        self.queryformer.fit(train, context=context)
        return self

    def predict_ms(self, test: PlanDataset) -> np.ndarray:
        context = self.dace.embed_dataset(test)
        return self.queryformer.predict_ms(test, context=context)

    def num_parameters(self) -> int:
        return self.queryformer.num_parameters() + self.dace.num_parameters()
