"""TPool (Sun & Li, "An end-to-end learning-based cost estimator", VLDB 2019).

A tree-pooling model trained **multi-task**: every node predicts both its
sub-plan latency and its output cardinality.  A shared representation MLP
embeds each node's features; a combiner merges the node embedding with the
mean-pooled children states; two linear heads emit (log latency,
log1p cardinality) per node.

Faithful simplifications: the original's string-predicate embeddings are
replaced by the numeric node encodings our substrate exposes; the
representation/pooling structure and the multi-task objective are kept.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.base import CostEstimatorBase
from repro.baselines.common import TreeLevelBatch, build_tree_levels
from repro.featurize.catcher import CaughtPlan, catch_plan
from repro.featurize.encoder import PlanEncoder
from repro.nn import Adam, Module, Tensor, no_grad
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import log_qerror_loss
from repro.workloads.dataset import PlanDataset


class _TPoolNet(Module):
    def __init__(self, input_dim: int, hidden: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden = hidden
        self.represent = Sequential(
            Linear(input_dim, hidden, rng=rng), ReLU(),
            Linear(hidden, hidden, rng=rng), ReLU(),
        )
        self.combine = Sequential(
            Linear(2 * hidden, hidden, rng=rng), ReLU(),
            Linear(hidden, hidden, rng=rng), ReLU(),
        )
        self.cost_head = Linear(hidden, 1, rng=rng)
        self.card_head = Linear(hidden, 1, rng=rng)

    def forward(self, batch: TreeLevelBatch):
        """Returns (cost preds per level, card preds per level, root costs)."""
        deeper_hidden: Optional[Tensor] = None
        cost_preds: List[Tensor] = []
        card_preds: List[Tensor] = []
        for level in batch.levels:
            n = level.num_nodes
            own = self.represent(Tensor(level.features))
            if deeper_hidden is None or level.child_mean is None:
                pooled = Tensor(np.zeros((n, self.hidden)))
            else:
                pooled = Tensor(level.child_mean) @ deeper_hidden
            hidden = self.combine(Tensor.concat([own, pooled], axis=1))
            cost = self.cost_head(hidden)
            card = self.card_head(hidden)
            cost_preds.append(cost.reshape(n))
            card_preds.append(card.reshape(n))
            deeper_hidden = hidden
        roots = cost_preds[-1][batch.root_order]
        return cost_preds, card_preds, roots


class TPoolModel(CostEstimatorBase):
    """TPool with the fit/predict interface (multi-task cost + cardinality)."""

    name = "TPool"

    def __init__(
        self,
        hidden: int = 160,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        card_loss_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.card_loss_weight = card_loss_weight
        self.seed = seed
        self.encoder = PlanEncoder(extra_features=True)
        self.net = _TPoolNet(
            self.encoder.dim, hidden, np.random.default_rng(seed)
        )

    def _batches(self, plans: Sequence[CaughtPlan], rng: np.random.Generator):
        order = sorted(range(len(plans)), key=lambda i: plans[i].num_nodes)
        chunks = [
            [plans[i] for i in order[s:s + self.batch_size]]
            for s in range(0, len(order), self.batch_size)
        ]
        rng.shuffle(chunks)
        return chunks

    def fit(self, train: PlanDataset) -> "TPoolModel":
        plans = [catch_plan(s.plan) for s in train]
        if not self.encoder.is_fit:
            self.encoder.fit(plans)
        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.net.trainable_parameters(), lr=self.lr)
        for _ in range(self.epochs):
            for chunk in self._batches(plans, rng):
                batch = build_tree_levels(chunk, self.encoder)
                optimizer.zero_grad()
                cost_preds, card_preds, _ = self.net(batch)
                total_nodes = sum(l.num_nodes for l in batch.levels)
                loss = None
                for level, cost, card in zip(
                    batch.levels, cost_preds, card_preds
                ):
                    term = log_qerror_loss(cost, level.labels_log)
                    term = term + self.card_loss_weight * log_qerror_loss(
                        card, level.card_labels_log
                    )
                    term = term * level.num_nodes
                    loss = term if loss is None else loss + term
                loss = loss * (1.0 / total_nodes)
                loss.backward()
                optimizer.step()
        return self

    def predict_ms(self, test: PlanDataset) -> np.ndarray:
        plans = [catch_plan(s.plan) for s in test]
        out = np.empty(len(plans))
        with no_grad():
            for start in range(0, len(plans), self.batch_size):
                chunk = plans[start:start + self.batch_size]
                batch = build_tree_levels(chunk, self.encoder, with_labels=False)
                _, _, roots = self.net(batch)
                out[start:start + len(chunk)] = roots.data
        return np.exp(out)

    def predict_cardinality(self, test: PlanDataset) -> np.ndarray:
        """Multi-task side output: predicted root result cardinality."""
        plans = [catch_plan(s.plan) for s in test]
        out = np.empty(len(plans))
        with no_grad():
            for start in range(0, len(plans), self.batch_size):
                chunk = plans[start:start + self.batch_size]
                batch = build_tree_levels(chunk, self.encoder, with_labels=False)
                _, card_preds, _ = self.net(batch)
                out[start:start + len(chunk)] = (
                    card_preds[-1][batch.root_order].data
                )
        return np.expm1(np.maximum(out, 0.0))

    def num_parameters(self) -> int:
        return self.net.num_parameters()
