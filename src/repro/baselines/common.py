"""Level-synchronous tree batching for recursive plan models.

QPPNet, TPool, and Zero-Shot all propagate information bottom-up through the
plan tree ("the parent waits for its children").  Evaluating that node by
node in Python is prohibitively slow, so this module batches a set of plans
*by depth*: all nodes at the deepest level are processed first (one matrix
op per node type), then their hidden states are aggregated into their
parents through constant 0/1 matrices, and so on up to the roots.  The
computation is mathematically identical to per-node recursion.

This layering is exactly the inefficiency the paper criticizes in QPPNet —
the number of sequential steps equals the tree depth — so per-model
inference throughput comparisons (Tab II) remain faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.featurize.catcher import CaughtPlan
from repro.featurize.encoder import LABEL_EPS_MS, PlanEncoder


@dataclass
class Level:
    """All nodes of a plan batch at one tree depth."""

    features: np.ndarray          # (n, feat_dim) encoded node features
    node_type_ids: np.ndarray     # (n,)
    labels_log: Optional[np.ndarray]   # (n,) log actual time, None w/o labels
    card_labels_log: Optional[np.ndarray]  # (n,) log1p actual rows
    child_sum: Optional[np.ndarray]     # (n, n_deeper) sum aggregation
    child_mean: Optional[np.ndarray]    # (n, n_deeper) mean aggregation
    child_slot: List[np.ndarray]        # two (n, n_deeper) selectors

    @property
    def num_nodes(self) -> int:
        return len(self.node_type_ids)


@dataclass
class TreeLevelBatch:
    """A batch of plans organized deepest-level-first."""

    levels: List[Level]           # levels[0] is the deepest
    root_order: np.ndarray        # roots-level rows -> plan order


def build_tree_levels(
    plans: Sequence[CaughtPlan],
    encoder: PlanEncoder,
    with_labels: bool = True,
) -> TreeLevelBatch:
    """Organize ``plans`` into depth levels with aggregation matrices."""
    if not plans:
        raise ValueError("empty plan batch")
    max_depth = max(int(plan.heights.max()) for plan in plans)

    # Global node bookkeeping: (plan_index, node_index) -> (depth, row).
    rows_at_depth: List[List[tuple]] = [[] for _ in range(max_depth + 1)]
    for plan_index, plan in enumerate(plans):
        for node_index in range(plan.num_nodes):
            depth = int(plan.heights[node_index])
            rows_at_depth[depth].append((plan_index, node_index))

    row_lookup = {}
    for depth, members in enumerate(rows_at_depth):
        for row, key in enumerate(members):
            row_lookup[key] = row

    encoded = [encoder.encode_plan(plan) for plan in plans]

    levels: List[Level] = []
    for depth in range(max_depth, -1, -1):
        members = rows_at_depth[depth]
        n = len(members)
        feat_dim = encoded[0].shape[1]
        features = np.zeros((n, feat_dim))
        type_ids = np.zeros(n, dtype=np.int64)
        labels = np.zeros(n) if with_labels else None
        card_labels = np.zeros(n) if with_labels else None
        for row, (plan_index, node_index) in enumerate(members):
            plan = plans[plan_index]
            features[row] = encoded[plan_index][node_index]
            type_ids[row] = plan.node_type_ids[node_index]
            if with_labels:
                if plan.actual_times is None:
                    raise ValueError("labels requested but plan not executed")
                labels[row] = np.log(
                    max(plan.actual_times[node_index], LABEL_EPS_MS)
                )
                card_labels[row] = np.log1p(
                    max(plan.actual_rows[node_index], 0.0)
                )

        child_sum = child_mean = None
        child_slot: List[np.ndarray] = []
        if depth < max_depth:
            n_deeper = len(rows_at_depth[depth + 1])
            child_sum = np.zeros((n, n_deeper))
            slot0 = np.zeros((n, n_deeper))
            slot1 = np.zeros((n, n_deeper))
            counts = np.zeros(n)
            for row, (plan_index, node_index) in enumerate(members):
                plan = plans[plan_index]
                children = [
                    i for i in range(plan.num_nodes)
                    if plan.parents[i] == node_index
                ]
                counts[row] = len(children)
                for slot, child in enumerate(children):
                    child_row = row_lookup[(plan_index, child)]
                    child_sum[row, child_row] = 1.0
                    if slot == 0:
                        slot0[row, child_row] = 1.0
                    elif slot == 1:
                        slot1[row, child_row] = 1.0
            child_mean = child_sum / np.maximum(counts, 1.0)[:, None]
            child_slot = [slot0, slot1]
        levels.append(Level(
            features=features,
            node_type_ids=type_ids,
            labels_log=labels,
            card_labels_log=card_labels,
            child_sum=child_sum,
            child_mean=child_mean,
            child_slot=child_slot,
        ))

    # Roots level: one node per plan (depth 0, DFS node 0), find row order.
    roots = rows_at_depth[0]
    root_order = np.zeros(len(plans), dtype=np.int64)
    for row, (plan_index, node_index) in enumerate(roots):
        if node_index != 0:
            raise AssertionError("non-root node at depth 0")
        root_order[plan_index] = row
    return TreeLevelBatch(levels=levels, root_order=root_order)
