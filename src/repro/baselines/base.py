"""Common interface and helpers shared by all cost estimators."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.featurize.encoder import LABEL_EPS_MS
from repro.metrics.qerror import QErrorSummary, qerror_summary
from repro.workloads.dataset import PlanDataset


class CostEstimatorBase:
    """fit / predict_ms / evaluate interface every model implements."""

    name = "base"

    def fit(self, train: PlanDataset) -> "CostEstimatorBase":
        raise NotImplementedError

    def predict_ms(self, test: PlanDataset) -> np.ndarray:
        raise NotImplementedError

    def evaluate(self, test: PlanDataset) -> QErrorSummary:
        return qerror_summary(self.predict_ms(test), test.latencies())

    def num_parameters(self) -> int:
        return 0

    def size_mb(self) -> float:
        """float32 size of the parameters, as the paper's Tab II reports."""
        return 4 * self.num_parameters() / 1e6


def log_labels(dataset: PlanDataset) -> np.ndarray:
    """Root log-latency labels for a dataset."""
    return np.log(np.maximum(dataset.latencies(), LABEL_EPS_MS))


def batch_indices(
    count: int, batch_size: int, rng: Optional[np.random.Generator] = None
):
    """Yield shuffled batch index arrays covering range(count)."""
    order = np.arange(count)
    if rng is not None:
        order = rng.permutation(count)
    for start in range(0, count, batch_size):
        yield order[start:start + batch_size]
