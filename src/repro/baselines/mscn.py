"""MSCN (Kipf et al., CIDR 2019) — the query-driven set-convolution model.

MSCN never sees the execution plan: it featurizes the *query statement* as
three sets — tables, joins, predicates — runs each element through a shared
per-set MLP, average-pools, concatenates the pooled vectors, and predicts
with a final MLP (here: log latency, the paper's cost-estimation usage).

The featurizer's vocabulary (table names, FK join edges, filterable
columns) comes from the target database's schema, which is what makes MSCN
a within-database model.  Knowledge integration (paper eq. 9) appends a
pre-trained DACE's 64-dim plan embedding ``w_E`` to the concatenation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import CostEstimatorBase, log_labels
from repro.catalog.datagen import NULL_SENTINEL, Database
from repro.nn import Adam, Module, Tensor, no_grad
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import log_qerror_loss
from repro.sql.query import COMPARISON_OPS, Query
from repro.workloads.dataset import PlanDataset


class MSCNFeaturizer:
    """Schema-derived set featurization of query statements."""

    def __init__(self, database: Database) -> None:
        schema = database.schema
        self.table_index: Dict[str, int] = {
            name: i for i, name in enumerate(sorted(schema.tables))
        }
        joins = sorted(
            f"{fk.child_table}.{fk.child_column}="
            f"{fk.parent_table}.{fk.parent_column}"
            for fk in schema.foreign_keys
        )
        self.join_index: Dict[str, int] = {j: i for i, j in enumerate(joins)}
        columns: List[Tuple[str, str]] = []
        self.column_range: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for table_name in sorted(schema.tables):
            table = schema.table(table_name)
            for column in table.columns:
                if column.kind not in ("int", "float"):
                    continue
                key = (table_name, column.name)
                columns.append(key)
                values = database.column_array(table_name, column.name)
                if values.dtype == np.int64:
                    live = values[values != NULL_SENTINEL]
                else:
                    live = values[np.isfinite(values)]
                if live.size:
                    self.column_range[key] = (float(live.min()),
                                              float(live.max()))
                else:
                    self.column_range[key] = (0.0, 1.0)
        self.column_index = {key: i for i, key in enumerate(columns)}
        self.op_index = {op: i for i, op in enumerate(COMPARISON_OPS)}

    # Feature dimensions ------------------------------------------------ #
    @property
    def table_dim(self) -> int:
        return len(self.table_index)

    @property
    def join_dim(self) -> int:
        return max(len(self.join_index), 1)

    @property
    def predicate_dim(self) -> int:
        return len(self.column_index) + len(self.op_index) + 1

    # ------------------------------------------------------------------ #
    def featurize(self, query: Query):
        """Three element-feature matrices for one query."""
        tables = np.zeros((len(query.tables), self.table_dim))
        for row, table in enumerate(query.tables):
            tables[row, self.table_index[table]] = 1.0

        join_rows = max(len(query.joins), 1)
        joins = np.zeros((join_rows, self.join_dim))
        for row, join in enumerate(query.joins):
            key = (f"{join.left_table}.{join.left_column}="
                   f"{join.right_table}.{join.right_column}")
            index = self.join_index.get(key)
            if index is None:  # try the reversed direction
                key = (f"{join.right_table}.{join.right_column}="
                       f"{join.left_table}.{join.left_column}")
                index = self.join_index.get(key)
            if index is not None:
                joins[row, index] = 1.0

        pred_rows = max(len(query.predicates), 1)
        predicates = np.zeros((pred_rows, self.predicate_dim))
        for row, predicate in enumerate(query.predicates):
            key = (predicate.table, predicate.column)
            column_pos = self.column_index.get(key)
            # IN lists are summarized by their mean literal (and their own
            # op slot), like MSCN's expansion of IN into disjunctions.
            literal = (
                float(np.mean(predicate.values))
                if predicate.op == "in" else predicate.value
            )
            if column_pos is not None:
                predicates[row, column_pos] = 1.0
                low, high = self.column_range[key]
                span = high - low if high > low else 1.0
                value = (literal - low) / span
            else:
                value = 0.5
            predicates[row, len(self.column_index)
                       + self.op_index[predicate.op]] = 1.0
            predicates[row, -1] = float(np.clip(value, -1.0, 2.0))
        return tables, joins, predicates


def _pad_sets(elements: Sequence[np.ndarray]):
    """Stack variable-length element sets into (B, S, d) plus a mask."""
    batch = len(elements)
    max_rows = max(e.shape[0] for e in elements)
    dim = elements[0].shape[1]
    out = np.zeros((batch, max_rows, dim))
    mask = np.zeros((batch, max_rows, 1))
    for index, matrix in enumerate(elements):
        out[index, : matrix.shape[0]] = matrix
        mask[index, : matrix.shape[0], 0] = 1.0
    return out, mask


class _MSCNNet(Module):
    def __init__(self, featurizer: MSCNFeaturizer, hidden: int,
                 context_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.table_mlp = Sequential(
            Linear(featurizer.table_dim, hidden, rng=rng), ReLU(),
            Linear(hidden, hidden, rng=rng), ReLU(),
        )
        self.join_mlp = Sequential(
            Linear(featurizer.join_dim, hidden, rng=rng), ReLU(),
            Linear(hidden, hidden, rng=rng), ReLU(),
        )
        self.pred_mlp = Sequential(
            Linear(featurizer.predicate_dim, hidden, rng=rng), ReLU(),
            Linear(hidden, hidden, rng=rng), ReLU(),
        )
        self.out_mlp = Sequential(
            Linear(3 * hidden + context_dim, hidden, rng=rng), ReLU(),
            Linear(hidden, 1, rng=rng),
        )

    @staticmethod
    def _pool(mlp: Module, padded: np.ndarray, mask: np.ndarray) -> Tensor:
        hidden = mlp(Tensor(padded)) * Tensor(mask)
        counts = np.maximum(mask.sum(axis=1), 1.0)
        return hidden.sum(axis=1) * Tensor(1.0 / counts)

    def forward(self, sets, context: Optional[np.ndarray] = None) -> Tensor:
        (tables, tables_mask), (joins, joins_mask), (preds, preds_mask) = sets
        pooled = [
            self._pool(self.table_mlp, tables, tables_mask),
            self._pool(self.join_mlp, joins, joins_mask),
            self._pool(self.pred_mlp, preds, preds_mask),
        ]
        if context is not None:
            pooled.append(Tensor(context))
        out = self.out_mlp(Tensor.concat(pooled, axis=1))
        return out.reshape(out.shape[0])


class MSCNModel(CostEstimatorBase):
    """MSCN with the fit/predict interface (and optional DACE context)."""

    name = "MSCN"

    def __init__(
        self,
        database: Database,
        hidden: int = 128,
        context_dim: int = 0,
        epochs: int = 40,
        batch_size: int = 128,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.featurizer = MSCNFeaturizer(database)
        self.context_dim = context_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.net = _MSCNNet(
            self.featurizer, hidden, context_dim, np.random.default_rng(seed)
        )

    # ------------------------------------------------------------------ #
    def _encode(self, dataset: PlanDataset, rows: np.ndarray):
        tables, joins, preds = [], [], []
        for index in rows:
            t, j, p = self.featurizer.featurize(dataset[int(index)].query)
            tables.append(t)
            joins.append(j)
            preds.append(p)
        return (_pad_sets(tables), _pad_sets(joins), _pad_sets(preds))

    def fit(
        self,
        train: PlanDataset,
        context: Optional[np.ndarray] = None,
    ) -> "MSCNModel":
        if self.context_dim and context is None:
            raise ValueError("model was built with context_dim but none given")
        labels = log_labels(train)
        rng = np.random.default_rng(self.seed)
        optimizer = Adam(self.net.trainable_parameters(), lr=self.lr)
        for _ in range(self.epochs):
            order = rng.permutation(len(train))
            for start in range(0, len(order), self.batch_size):
                rows = order[start:start + self.batch_size]
                sets = self._encode(train, rows)
                ctx = context[rows] if context is not None else None
                optimizer.zero_grad()
                pred = self.net(sets, ctx)
                loss = log_qerror_loss(pred, labels[rows])
                loss.backward()
                optimizer.step()
        return self

    def predict_ms(
        self,
        test: PlanDataset,
        context: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if self.context_dim and context is None:
            raise ValueError("model was built with context_dim but none given")
        out = np.empty(len(test))
        with no_grad():
            for start in range(0, len(test), self.batch_size):
                rows = np.arange(start, min(start + self.batch_size, len(test)))
                sets = self._encode(test, rows)
                ctx = context[rows] if context is not None else None
                out[rows] = self.net(sets, ctx).data
        return np.exp(out)

    def num_parameters(self) -> int:
        return self.net.num_parameters()
