"""Markdown evaluation reports for a cost estimator on a workload.

Generates the analysis a practitioner wants before trusting an estimator:
accuracy percentiles, rank quality (what plan selection and scheduling
consume), estimation-bias balance, the worst-predicted queries with their
EXPLAIN ANALYZE output, and the operator types driving cardinality error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.engine.diagnostics import error_by_node_type
from repro.engine.plan import explain
from repro.metrics.extended import rank_quality, underestimation_fraction
from repro.metrics.qerror import qerror_summary
from repro.nn.losses import qerror
from repro.sql.text import render_sql
from repro.workloads.dataset import PlanDataset


def evaluation_report(
    name: str,
    predictions: Sequence[float],
    dataset: PlanDataset,
    worst_queries: int = 3,
    include_plans: bool = True,
) -> str:
    """Render a markdown report for ``predictions`` on ``dataset``."""
    predictions = np.asarray(predictions, dtype=np.float64)
    actual = dataset.latencies()
    if predictions.shape != actual.shape:
        raise ValueError("one prediction per query required")
    summary = qerror_summary(predictions, actual)
    ranks = rank_quality(predictions, actual)
    under = underestimation_fraction(predictions, actual)

    lines: List[str] = [
        f"# Evaluation report — {name}",
        "",
        f"- queries: {len(dataset)} "
        f"(databases: {', '.join(dataset.database_names())})",
        f"- latency range: {actual.min():.2f} .. {actual.max():.2f} ms",
        "",
        "## Accuracy (q-error)",
        "",
        "| median | 90th | 95th | 99th | max | mean |",
        "|---|---|---|---|---|---|",
        f"| {summary.median:.2f} | {summary.p90:.2f} | {summary.p95:.2f} "
        f"| {summary.p99:.2f} | {summary.max:.2f} | {summary.mean:.2f} |",
        "",
        "## Ranking quality",
        "",
        f"- Spearman: {ranks.spearman:.3f}  Kendall: {ranks.kendall:.3f}",
        f"- pairwise ordering accuracy: {ranks.pairwise_accuracy:.3f}",
        f"- underestimated queries: {100 * under:.1f}% "
        "(50% is balanced; underestimation is the risky direction)",
        "",
    ]

    errors = qerror(predictions, actual)
    order = np.argsort(errors)[::-1][:worst_queries]
    lines.append(f"## Worst {len(order)} predictions")
    lines.append("")
    for rank, index in enumerate(order, start=1):
        sample = dataset[int(index)]
        lines.append(
            f"### {rank}. q-error {errors[index]:.1f} "
            f"(predicted {predictions[index]:.2f} ms, "
            f"actual {actual[index]:.2f} ms)"
        )
        lines.append("")
        lines.append("```sql")
        lines.append(render_sql(sample.query))
        lines.append("```")
        if include_plans:
            lines.append("")
            lines.append("```")
            lines.append(explain(sample.plan, analyze=True))
            lines.append("```")
        lines.append("")

    lines.append("## Optimizer cardinality error by operator")
    lines.append("")
    lines.append("| operator | nodes | median q-error | max q-error |")
    lines.append("|---|---|---|---|")
    by_type = error_by_node_type([s.plan for s in dataset])
    for node_type, stats in by_type.items():
        lines.append(
            f"| {node_type} | {stats['count']} "
            f"| {stats['median_qerror']:.2f} | {stats['max_qerror']:.1f} |"
        )
    lines.append("")
    return "\n".join(lines)


def save_report(
    name: str,
    predictions: Sequence[float],
    dataset: PlanDataset,
    path: str,
    **kwargs,
) -> None:
    """Write :func:`evaluation_report` to ``path``."""
    report = evaluation_report(name, predictions, dataset, **kwargs)
    with open(path, "w") as handle:
        handle.write(report + "\n")
