"""Command-line interface: collect workloads, train, evaluate, explain.

Examples::

    python -m repro zoo
    python -m repro collect --db imdb --count 200 --out imdb.jsonl
    python -m repro collect --db airline --count 200 --out airline.jsonl
    python -m repro train --workload airline.jsonl --out model/
    python -m repro finetune --model model/ --workload imdb.jsonl --out tuned/
    python -m repro evaluate --model tuned/ --workload imdb.jsonl
    python -m repro serve --model tuned/ --workload imdb.jsonl \
        --metrics metrics.jsonl
    python -m repro obs metrics.jsonl --format table
    python -m repro explain --db imdb --model model/ \
        --sql "SELECT COUNT(*) FROM title WHERE title.production_year > 2000"
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.catalog.zoo import ZOO_DATABASE_NAMES, build_schema, load_database
from repro.core.estimator import DACE
from repro.core.trainer import TrainingConfig
from repro.engine.machines import MACHINES
from repro.engine.plan import explain as explain_plan
from repro.engine.session import EngineSession
from repro.metrics.qerror import qerror_summary
from repro.metrics.tables import format_table
from repro.obs import render_table, to_json_lines, to_prometheus
from repro.sql.generator import QueryGenerator, WorkloadSpec
from repro.sql.text import parse_query
from repro.workloads.dataset import PlanDataset, collect_workload
from repro.workloads.serialize import load_dataset, save_dataset

_MACHINES = MACHINES


def _cmd_zoo(args: argparse.Namespace) -> int:
    rows = []
    for name in ZOO_DATABASE_NAMES:
        schema = build_schema(name)
        rows.append([
            name, len(schema.tables), len(schema.foreign_keys),
            schema.total_rows(),
        ])
    print(format_table(
        ["database", "tables", "foreign keys", "rows"], rows,
        title="The 20-database zoo",
    ))
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    spec = WorkloadSpec(
        max_joins=args.max_joins,
        max_predicates=args.max_predicates,
        min_predicates=args.min_predicates,
    )
    queries = QueryGenerator(database, spec, seed=args.seed).generate_many(
        args.count
    )
    dataset = collect_workload(
        database, queries, machine=_MACHINES[args.machine], seed=args.seed
    )
    save_dataset(dataset, args.out)
    print(f"collected {len(dataset)} labelled plans from {args.db!r} "
          f"on {args.machine} -> {args.out}")
    return 0


def _load_many(paths: List[str]) -> PlanDataset:
    return PlanDataset.merge(load_dataset(path) for path in paths)


def _cmd_train(args: argparse.Namespace) -> int:
    train = _load_many(args.workload)
    dace = DACE(
        training=TrainingConfig(epochs=args.epochs, seed=args.seed),
        alpha=args.alpha,
        seed=args.seed,
    )
    dace.fit(train)
    dace.save(args.out)
    print(f"trained DACE on {len(train)} plans "
          f"({dace.num_parameters()} parameters) -> {args.out}")
    return 0


def _cmd_finetune(args: argparse.Namespace) -> int:
    dace = DACE.load(args.model)
    tune = _load_many(args.workload)
    dace.fine_tune_lora(tune, epochs=args.epochs)
    dace.save(args.out)
    print(f"LoRA fine-tuned on {len(tune)} plans "
          f"({dace.model.lora_num_parameters()} adapter parameters) "
          f"-> {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dace = DACE.load(args.model)
    test = _load_many(args.workload)
    summary = qerror_summary(dace.predict(test), test.latencies())
    print(format_table(
        ["median", "90th", "95th", "99th", "max", "mean"],
        [summary.as_row()],
        title=f"q-error on {len(test)} plans",
    ))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    session = EngineSession(database, _MACHINES[args.machine], seed=args.seed)
    query = parse_query(args.sql)
    if args.analyze:
        plan = session.explain_analyze(query)
    else:
        plan = session.explain(query)
    print(explain_plan(plan, analyze=args.analyze))
    if args.model:
        dace = DACE.load(args.model)
        print(f"\nDACE predicted latency: "
              f"{dace.predict_plan(plan):.3f} ms")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.workloads.describe import describe_text

    dataset = _load_many(args.workload)
    print(describe_text(dataset))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.reporting import evaluation_report, save_report

    dace = DACE.load(args.model)
    test = _load_many(args.workload)
    predictions = dace.predict(test)
    if args.out:
        save_report("DACE", predictions, test, args.out)
        print(f"report written to {args.out}")
    else:
        print(evaluation_report("DACE", predictions, test))
    return 0


_METRIC_EXPORTERS = {
    "table": lambda registry: render_table(registry, title="serving metrics"),
    "json": to_json_lines,
    "prom": to_prometheus,
}


def _cmd_serve(args: argparse.Namespace) -> int:
    """Replay a workload through the serving runtime and report stats."""
    import math
    import threading
    import time

    from repro.serve import ChaosEstimator, ConcurrentEstimatorService, \
        CostFallback, MicroBatcher, ResilientEstimator

    dace = DACE.load(args.model)
    if args.no_fused:
        dace.service.disable_fused()
    dataset = _load_many(args.workload)
    plans = [sample.plan for sample in dataset]
    repeats = max(args.repeat, 1)
    dace.service.reset_stats()

    if args.shards:
        return _serve_fleet(args, dace, plans, repeats)

    # Chaos replay: inject seeded faults under the resilience tier and
    # verify the serving path degrades instead of raising.
    resilient = None
    estimator = dace.service
    if args.chaos is not None:
        estimator = ChaosEstimator.with_fault_rate(
            estimator, args.chaos, seed=args.chaos_seed
        )
    if args.chaos is not None or args.resilient:
        resilient = ResilientEstimator(
            estimator,
            fallback=CostFallback(dace.encoder.scaler),
            metrics=dace.metrics,
        )
        estimator = resilient
    pool = None
    batcher = None
    if args.workers:
        # Concurrent replay: N closed-loop client threads hammer the
        # thread-pool front-end with single-plan calls; the leader drain
        # coalesces whatever piles up during each forward.
        pool = ConcurrentEstimatorService(
            estimator, workers=args.workers, max_batch=args.max_batch
        )

        def _replay_concurrent():
            out = [0.0] * len(plans)

            def client(offset):
                for i in range(offset, len(plans), args.workers):
                    out[i] = pool.predict_plan(plans[i])

            clients = [
                threading.Thread(target=client, args=(offset,))
                for offset in range(args.workers)
            ]
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join()
            return out
    else:
        batcher = MicroBatcher(estimator, max_batch=args.max_batch)

    start = time.perf_counter()
    predictions = []
    for _ in range(repeats):
        if pool is not None:
            predictions = _replay_concurrent()
        else:
            handles = [batcher.submit(plan) for plan in plans]
            batcher.flush()
            predictions = [handle.result() for handle in handles]
    elapsed = time.perf_counter() - start
    if pool is not None:
        pool.close()

    served = len(plans) * repeats
    stats = dace.service.cache_stats
    print(f"served {served} predictions over {len(plans)} plans "
          f"(x{repeats}) in {elapsed * 1e3:.1f} ms "
          f"({served / max(elapsed, 1e-9):.0f} plans/s)")
    if pool is not None:
        drains = dace.metrics.histogram("serve.pool.flush_size")
        print(f"pool: workers={args.workers} drains={drains.count} "
              f"mean_flush={drains.mean:.1f} (max_batch={args.max_batch})")
    else:
        print(f"micro-batches: {batcher.batches_run} "
              f"(max_batch={args.max_batch})")
    print(f"cache: {stats}")
    fused_fwd = dace.metrics.counter("serve.fused.forwards").value
    fused_fb = dace.metrics.counter("serve.fused.fallbacks").value
    print(f"fused: forwards={fused_fwd} fallbacks={fused_fb}"
          + (" (disabled)" if args.no_fused else ""))
    if predictions:
        print(f"latency range: {min(predictions):.3f} .. "
              f"{max(predictions):.3f} ms")
        finite = sum(1 for value in predictions if math.isfinite(value))
        if finite != len(predictions):
            print(f"WARNING: {len(predictions) - finite} non-finite "
                  f"predictions escaped the serving path")
    if resilient is not None:
        degraded = dace.metrics.counter("resilience.degraded").value
        retries = dace.metrics.counter("resilience.retries").value
        print(f"resilience: breaker={resilient.breaker.state} "
              f"retries={retries} degraded={degraded} "
              f"({resilient.degraded_fraction:.1%} of predictions)")
        if args.chaos is not None:
            chaos = resilient.estimator
            print(f"chaos: fault_rate={args.chaos:.0%} "
                  f"injected={chaos.injected}")
    if args.metrics:
        report = _METRIC_EXPORTERS[args.metrics_format](dace.metrics)
        with open(args.metrics, "w") as handle:
            handle.write(report if report.endswith("\n") else report + "\n")
        print(f"metrics ({args.metrics_format}) written to {args.metrics}")
    return 0


def _serve_fleet(args: argparse.Namespace, dace, plans, repeats: int) -> int:
    """Replay a (optionally multi-tenant) workload through a FleetGateway."""
    import math
    import threading
    import time

    import numpy as np

    from repro.serve import ChaosEstimator, FleetGateway, ModelRegistry

    shard_wrapper = None
    if args.chaos is not None:
        def shard_wrapper(service):
            return ChaosEstimator.with_fault_rate(
                service, args.chaos, seed=args.chaos_seed
            )
    fleet = FleetGateway(
        dace.model,
        dace.encoder,
        shards=args.shards,
        workers=args.workers if args.workers else 1,
        batch_size=args.max_batch,
        metrics=dace.metrics,
        fused=False if args.no_fused else None,
        resilient=args.resilient or args.chaos is not None,
        shard_wrapper=shard_wrapper,
    )
    # Synthetic tenants: seeded random LoRA deltas on the base adapters.
    # Real deployments register ModelRegistry.adapter_state dumps; for a
    # replay the deltas only need to be distinct per tenant.
    tags = [ModelRegistry.BASE_TAG]
    if args.tenants:
        base = fleet.shards[0].registry.adapter_state(ModelRegistry.BASE_TAG)
        rng = np.random.default_rng(args.chaos_seed)
        for index in range(args.tenants):
            tag = f"tenant{index}"
            fleet.register_tenant(tag, {
                name: array + rng.normal(0.0, 0.05, array.shape)
                for name, array in base.items()
            })
            tags.append(tag)
    tenant_of = [tags[i % len(tags)] for i in range(len(plans))]

    clients = max(args.workers or 0, 2 * args.shards)
    shed_total = 0

    def _replay():
        out = [0.0] * len(plans)

        def client(offset):
            for i in range(offset, len(plans), clients):
                out[i] = fleet.predict_plan(plans[i], tenant=tenant_of[i])

        threads = [
            threading.Thread(target=client, args=(offset,))
            for offset in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return out

    start = time.perf_counter()
    predictions = []
    for _ in range(repeats):
        predictions = _replay()
    elapsed = time.perf_counter() - start
    stats = fleet.stats()
    fleet.close()

    served = len(plans) * repeats
    print(f"served {served} predictions over {len(plans)} plans "
          f"(x{repeats}) in {elapsed * 1e3:.1f} ms "
          f"({served / max(elapsed, 1e-9):.0f} plans/s)")
    print(f"fleet: shards={args.shards} tenants={len(tags)} "
          f"clients={clients} routed={stats['routed']:.0f} "
          f"shed={stats['shed']:.0f} swaps={stats['swaps']:.0f}")
    print(f"fleet cache: hits={stats['cache_hits']:.0f} "
          f"misses={stats['cache_misses']:.0f} "
          f"hit_rate={stats['cache_hit_rate']:.1%}")
    shed_total = int(stats["shed"])
    if predictions:
        print(f"latency range: {min(predictions):.3f} .. "
              f"{max(predictions):.3f} ms")
        finite = sum(1 for value in predictions if math.isfinite(value))
        if finite != len(predictions):
            print(f"WARNING: {len(predictions) - finite} non-finite "
                  f"predictions escaped the serving path")
    if args.resilient or args.chaos is not None:
        degraded = dace.metrics.counter("resilience.degraded").value
        retries = dace.metrics.counter("resilience.retries").value
        print(f"resilience: retries={retries} degraded={degraded} "
              f"shed={shed_total}")
    if args.metrics:
        report = _METRIC_EXPORTERS[args.metrics_format](dace.metrics)
        with open(args.metrics, "w") as handle:
            handle.write(report if report.endswith("\n") else report + "\n")
        print(f"metrics ({args.metrics_format}) written to {args.metrics}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the on-disk encoding cache."""
    from repro.workloads.encoded import EncodingCache

    cache = EncodingCache(args.dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached encoding(s) from {cache.directory}")
        return 0
    entries = cache.entries()
    if not entries:
        print(f"encoding cache at {cache.directory} is empty")
        return 0
    rows = [[name, size] for name, size in entries]
    print(format_table(
        ["entry", "bytes"], rows,
        title=f"encoding cache at {cache.directory} "
              f"({cache.total_bytes} bytes total)",
    ))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Pretty-print (or convert) a JSON-lines metrics dump."""
    from repro.obs import load_json_lines

    with open(args.path) as handle:
        registry = load_json_lines(handle.read())
    print(_METRIC_EXPORTERS[args.format](registry).rstrip("\n"))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.config import resolve_scale
    from repro.experiments import cell_names, get_cell

    if args.experiment == "list":
        for name in cell_names():
            print(name)
        return 0
    try:
        runner = get_cell(args.experiment)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        raise SystemExit(2)
    result = runner(resolve_scale(args.scale))
    print(result["table"])
    return 0


_DEFAULT_RESULTS_DIR = "benchmarks/results"


def _results_dir(args: argparse.Namespace) -> str:
    import os

    return (args.results_dir
            or os.environ.get("REPRO_RESULTS_DIR")
            or _DEFAULT_RESULTS_DIR)


def _parse_axis_value(text: str):
    """One axis value from the command line: int, float, bool, tuple, str."""
    if ":" in text:
        return tuple(_parse_axis_value(part) for part in text.split(":"))
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def _parse_axes(entries) -> dict:
    """``--axis name=v1,v2`` pairs into an axes mapping."""
    axes = {}
    for entry in entries or ():
        name, sep, values = entry.partition("=")
        if not sep or not name:
            raise SystemExit(
                f"error: --axis expects name=v1,v2,...; got {entry!r}"
            )
        axes[name.strip()] = [
            _parse_axis_value(value) for value in values.split(",")
        ]
    return axes


def _cmd_exp_run(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentSpec, ResultsStore, Runner
    from repro.obs import to_json_lines

    store = ResultsStore(root=_results_dir(args), scale=args.scale)

    def on_cell(status, config, wall):
        marker = {"ran": "ran ", "skipped": "skip", "failed": "FAIL"}[status]
        line = f"[{marker}] {config.id}  {config.label}"
        if status == "ran":
            line += f"  ({wall:.2f}s)"
        print(line)

    try:
        runner = Runner(
            store, workers=args.workers, backend=args.backend,
            timeout_s=args.timeout, on_cell=on_cell,
        )
        spec = ExperimentSpec(
            args.experiments, scale=args.scale, axes=_parse_axes(args.axis)
        )
        summary = runner.run(spec, force=args.force)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        raise SystemExit(2)
    store.save_run_summary(summary)
    print(summary.format())
    print(f"cells: {store.cells_dir}")
    if args.metrics:
        report = to_json_lines(runner.metrics)
        with open(args.metrics, "w") as handle:
            handle.write(report if report.endswith("\n") else report + "\n")
        print(f"metrics written to {args.metrics}")
    return 1 if summary.failed else 0


def _cmd_exp_ls(args: argparse.Namespace) -> int:
    from repro.experiments import format_metrics_report, load_results_from_dir

    directory = _results_dir(args)
    if args.scale:
        import os

        directory = os.path.join(directory, args.scale)
    print(format_metrics_report(load_results_from_dir(directory)))
    return 0


def _cmd_exp_report(args: argparse.Namespace) -> int:
    from repro.experiments import load_results_from_dir

    directory = _results_dir(args)
    if args.scale:
        import os

        directory = os.path.join(directory, args.scale)
    cells = load_results_from_dir(directory)
    if args.experiment:
        cells = [c for c in cells if c.experiment == args.experiment]
    if not cells:
        print("error: no stored cells match; run 'repro exp run' first",
              file=sys.stderr)
        return 1
    print("\n\n".join(cell.table for cell in cells))
    return 0


def _cmd_exp_diff(args: argparse.Namespace) -> int:
    from repro.experiments import CellDiffError, diff_cells, find_cell, \
        format_cell_diff

    directory = _results_dir(args)
    try:
        cell_a = find_cell(directory, args.id_a, scale=args.scale)
        cell_b = find_cell(directory, args.id_b, scale=args.scale)
        diff = diff_cells(cell_a, cell_b)
    except CellDiffError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_cell_diff(diff))
    return 0 if diff.identical else 1


def _cmd_exp_clean(args: argparse.Namespace) -> int:
    from repro.experiments import ResultsStore

    store = ResultsStore(root=_results_dir(args), scale=args.scale)
    removed = store.clean()
    print(f"removed {removed} cell(s) from {store.cells_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DACE reproduction command-line tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("zoo", help="list the 20 zoo databases").set_defaults(
        func=_cmd_zoo
    )

    collect = sub.add_parser("collect", help="generate + execute a workload")
    collect.add_argument("--db", required=True, choices=ZOO_DATABASE_NAMES)
    collect.add_argument("--count", type=int, default=200)
    collect.add_argument("--out", required=True)
    collect.add_argument("--machine", choices=_MACHINES, default="M1")
    collect.add_argument("--max-joins", type=int, default=5)
    collect.add_argument("--max-predicates", type=int, default=5)
    collect.add_argument("--min-predicates", type=int, default=1)
    collect.add_argument("--seed", type=int, default=0)
    collect.set_defaults(func=_cmd_collect)

    train = sub.add_parser("train", help="pre-train DACE on workload files")
    train.add_argument("--workload", nargs="+", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--epochs", type=int, default=30)
    train.add_argument("--alpha", type=float, default=0.5)
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(func=_cmd_train)

    finetune = sub.add_parser("finetune", help="LoRA fine-tune a saved model")
    finetune.add_argument("--model", required=True)
    finetune.add_argument("--workload", nargs="+", required=True)
    finetune.add_argument("--out", required=True)
    finetune.add_argument("--epochs", type=int, default=20)
    finetune.set_defaults(func=_cmd_finetune)

    evaluate = sub.add_parser("evaluate", help="q-error of a saved model")
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--workload", nargs="+", required=True)
    evaluate.set_defaults(func=_cmd_evaluate)

    explain = sub.add_parser("explain", help="plan (and simulate) a SQL query")
    explain.add_argument("--db", required=True, choices=ZOO_DATABASE_NAMES)
    explain.add_argument("--sql", required=True)
    explain.add_argument("--analyze", action="store_true")
    explain.add_argument("--machine", choices=_MACHINES, default="M1")
    explain.add_argument("--model", default=None,
                         help="saved DACE directory for corrected estimates")
    explain.add_argument("--seed", type=int, default=0)
    explain.set_defaults(func=_cmd_explain)

    describe = sub.add_parser(
        "describe", help="summarize a collected workload file"
    )
    describe.add_argument("--workload", nargs="+", required=True)
    describe.set_defaults(func=_cmd_describe)

    report = sub.add_parser(
        "report", help="markdown evaluation report of a saved model"
    )
    report.add_argument("--model", required=True)
    report.add_argument("--workload", nargs="+", required=True)
    report.add_argument("--out", default=None)
    report.set_defaults(func=_cmd_report)

    serve = sub.add_parser(
        "serve", help="replay a workload through the serving runtime"
    )
    serve.add_argument("--model", required=True)
    serve.add_argument("--workload", nargs="+", required=True)
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="serve through a thread pool of N workers: "
                            "closed-loop concurrent replay with dynamic "
                            "batching (default: single-threaded replay)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="micro-batcher coalescing size")
    serve.add_argument("--shards", type=int, default=None, metavar="N",
                       help="serve through a FleetGateway of N shards "
                            "(consistent-hash routing, per-tenant LoRA, "
                            "admission control); --workers then sets the "
                            "per-shard pool size")
    serve.add_argument("--tenants", type=int, default=0, metavar="K",
                       help="with --shards: register K synthetic tenants "
                            "(seeded random LoRA deltas) and spread the "
                            "replayed plans across them round-robin")
    serve.add_argument("--repeat", type=int, default=2,
                       help="replay count (>1 exercises the cache)")
    serve.add_argument("--metrics", default=None,
                       help="write the metrics report to this path")
    serve.add_argument("--metrics-format",
                       choices=sorted(_METRIC_EXPORTERS), default="json",
                       help="report format (json round-trips via "
                            "'repro obs')")
    serve.add_argument("--chaos", type=float, default=None, metavar="RATE",
                       help="inject seeded faults (errors/NaN/latency) at "
                            "this rate and serve through the resilience "
                            "tier")
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for the chaos fault schedule")
    serve.add_argument("--resilient", action="store_true",
                       help="wrap serving in the retry/breaker/fallback "
                            "tier even without --chaos")
    serve.add_argument("--no-fused", action="store_true",
                       help="pin cache-miss forwards to the per-layer "
                            "Module.infer path instead of the fused "
                            "serving kernel (byte-identical; for "
                            "debugging and A/B timing)")
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk encoding cache"
    )
    cache.add_argument("action", choices=["inspect", "clear"],
                       nargs="?", default="inspect")
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro)")
    cache.set_defaults(func=_cmd_cache)

    obs = sub.add_parser(
        "obs", help="pretty-print a JSON-lines metrics dump"
    )
    obs.add_argument("path", help="file written by 'repro serve --metrics'")
    obs.add_argument("--format", choices=sorted(_METRIC_EXPORTERS),
                     default="table")
    obs.set_defaults(func=_cmd_obs)

    from repro.bench.config import SCALES
    from repro.experiments.runner import BACKENDS

    bench = sub.add_parser(
        "bench", help="run one of the paper's experiments"
    )
    bench.add_argument(
        "experiment",
        help="experiment name from the cell registry, or 'list'",
    )
    bench.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    bench.set_defaults(func=_cmd_bench)

    exp = sub.add_parser(
        "exp", help="declarative experiment matrices with resumable cells"
    )
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)

    exp_run = exp_sub.add_parser(
        "run", help="expand a matrix and run every cell not already stored"
    )
    exp_run.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                         help="registered experiment name(s); "
                              "see 'repro bench list'")
    exp_run.add_argument("--scale", choices=sorted(SCALES), default="smoke")
    exp_run.add_argument("--axis", action="append", metavar="NAME=V1,V2",
                         help="one matrix axis: a BenchScale field or a "
                              "cell-function keyword (repeatable; 'a:b' "
                              "parses as a tuple value)")
    exp_run.add_argument("--workers", type=int, default=1,
                         help="pool width for cell fan-out")
    exp_run.add_argument("--backend", choices=BACKENDS, default="thread",
                         help="'thread' shares in-process caches; "
                              "'process' spawn-isolates each cell for "
                              "true parallelism and crash containment")
    exp_run.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-cell wall-clock limit (process backend "
                              "only); an overrunning child is killed and "
                              "only that cell fails")
    exp_run.add_argument("--results-dir", default=None,
                         help="results root (default: $REPRO_RESULTS_DIR "
                              f"or {_DEFAULT_RESULTS_DIR})")
    exp_run.add_argument("--force", action="store_true",
                         help="recompute cells even when a valid result "
                              "is stored")
    exp_run.add_argument("--metrics", default=None,
                         help="write experiments.* metrics (JSON lines) "
                              "to this path")
    exp_run.set_defaults(func=_cmd_exp_run)

    exp_ls = exp_sub.add_parser("ls", help="summarize stored cells")
    exp_ls.add_argument("--scale", default=None)
    exp_ls.add_argument("--results-dir", default=None)
    exp_ls.set_defaults(func=_cmd_exp_ls)

    exp_report = exp_sub.add_parser(
        "report", help="print stored paper tables without recomputing"
    )
    exp_report.add_argument("--experiment", default=None,
                            help="only cells of this experiment")
    exp_report.add_argument("--scale", default=None)
    exp_report.add_argument("--results-dir", default=None)
    exp_report.set_defaults(func=_cmd_exp_report)

    exp_diff = exp_sub.add_parser(
        "diff", help="compare two stored cells metric by metric"
    )
    exp_diff.add_argument("id_a", metavar="ID-A",
                          help="config id (or unique prefix) of the "
                               "baseline cell")
    exp_diff.add_argument("id_b", metavar="ID-B",
                          help="config id (or unique prefix) of the "
                               "cell to compare")
    exp_diff.add_argument("--scale", default=None,
                          help="only search this scale's cells")
    exp_diff.add_argument("--results-dir", default=None)
    exp_diff.set_defaults(func=_cmd_exp_diff)

    exp_clean = exp_sub.add_parser(
        "clean", help="delete stored cells at one scale"
    )
    exp_clean.add_argument("--scale", default="smoke")
    exp_clean.add_argument("--results-dir", default=None)
    exp_clean.set_defaults(func=_cmd_exp_clean)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
