"""The plan encoder: one-hot node types + robust-scaled DBMS estimates.

Per node the encoding is ``[one_hot(node_type, 16), scaled_card,
scaled_cost]`` (d = 18, matching the paper).  The scaler is fit on the
training plans only and log-transforms the heavy-tailed estimates before
median/IQR scaling, as Zero-Shot's robust scaling does.

Plans are batched with padding; a padded position's attention row lets it
attend only to itself (avoiding NaN softmax rows) and its loss weight is 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.engine.plan import NODE_TYPES, PlanNode
from repro.featurize.catcher import CaughtPlan, catch_plan
from repro.featurize.loss_weights import DEFAULT_ALPHA, loss_weights

NUM_NODE_TYPES = len(NODE_TYPES)  # 16
ENCODING_DIM = NUM_NODE_TYPES + 2  # + scaled card, scaled cost = 18
LABEL_EPS_MS = 1e-3  # floor before taking log of latencies


class RobustScaler:
    """Median/IQR scaling after log1p, fit on training data only."""

    def __init__(self) -> None:
        self.center_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "RobustScaler":
        """Fit on a (num_samples, num_features) array of raw estimates."""
        logged = np.log1p(np.maximum(values, 0.0))
        self.center_ = np.median(logged, axis=0)
        q75, q25 = np.percentile(logged, [75, 25], axis=0)
        iqr = q75 - q25
        self.scale_ = np.where(iqr > 1e-12, iqr, 1.0)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.center_ is None:
            raise RuntimeError("scaler must be fit before transform")
        logged = np.log1p(np.maximum(values, 0.0))
        return (logged - self.center_) / self.scale_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def state(self) -> dict:
        return {"center": self.center_, "scale": self.scale_}

    def load_state(self, state: dict) -> None:
        self.center_ = np.asarray(state["center"], dtype=np.float64)
        self.scale_ = np.asarray(state["scale"], dtype=np.float64)


@dataclass
class EncodedBatch:
    """A padded batch of encoded plans, ready for the model."""

    features: np.ndarray      # (B, n_max, 18)
    attention_mask: np.ndarray  # (B, n_max, n_max) bool
    valid: np.ndarray         # (B, n_max) bool — real (non-padding) nodes
    heights: np.ndarray       # (B, n_max) int
    loss_weights: np.ndarray  # (B, n_max) float, 0 on padding
    labels_log: Optional[np.ndarray]  # (B, n_max) log-latency, 0 on padding

    @property
    def batch_size(self) -> int:
        return self.features.shape[0]

    @property
    def max_nodes(self) -> int:
        return self.features.shape[1]


NUM_EXTRA_FEATURES = 4


class PlanEncoder:
    """Encodes caught plans into padded model-ready batches.

    ``card_source`` selects which cardinality feeds the encoding:
    ``"estimated"`` (the DBMS estimate — DACE proper) or ``"actual"`` (the
    true cardinality — the paper's DACE-A oracle variant, Fig 12).

    ``extra_features`` appends the richer, *workload-dependent* per-node
    features the WDM baselines' original designs consume — tuple width,
    predicate count, raw literal magnitudes, operator mix.  These carry
    data characteristics: they add in-distribution signal but shift under
    template/data/database drift, which is exactly the fragility the paper
    attributes to WDMs (DACE deliberately omits them; see Insight I).
    """

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        card_source: str = "estimated",
        extra_features: bool = False,
    ) -> None:
        if card_source not in ("estimated", "actual"):
            raise ValueError(f"unknown card_source {card_source!r}")
        self.alpha = alpha
        self.card_source = card_source
        self.extra_features = extra_features
        self.scaler = RobustScaler()

    def _cards(self, plan: CaughtPlan) -> np.ndarray:
        if self.card_source == "estimated":
            return plan.est_rows
        if plan.actual_rows is None:
            raise ValueError(
                "card_source='actual' needs executed plans with actual rows"
            )
        return plan.actual_rows

    # ------------------------------------------------------------------ #
    def fit(self, plans: Iterable[CaughtPlan]) -> "PlanEncoder":
        """Fit the robust scaler on training plans' (card, cost) pairs."""
        rows: List[np.ndarray] = []
        for plan in plans:
            rows.append(np.stack([self._cards(plan), plan.est_costs], axis=1))
        if not rows:
            raise ValueError("cannot fit encoder on an empty plan set")
        self.scaler.fit(np.concatenate(rows, axis=0))
        return self

    @property
    def is_fit(self) -> bool:
        return self.scaler.center_ is not None

    @property
    def dim(self) -> int:
        """Per-node encoding length."""
        return ENCODING_DIM + (NUM_EXTRA_FEATURES if self.extra_features
                               else 0)

    def _extra(self, plan: CaughtPlan) -> np.ndarray:
        """The workload-dependent extra features (n, 4): raw-scale width,
        predicate count, mean literal magnitude, equality-operator mix."""
        rows = []
        for node in plan.nodes:
            literals = [
                p.value if p.op != "in" else float(np.mean(p.values))
                for p in node.predicates
            ]
            if literals:
                magnitude = float(np.mean([
                    np.sign(v) * np.log1p(abs(v)) for v in literals
                ])) / 10.0
                eq_fraction = float(np.mean([
                    1.0 if p.op in ("=", "in") else 0.0
                    for p in node.predicates
                ]))
            else:
                magnitude = 0.0
                eq_fraction = 0.0
            rows.append([
                np.log1p(node.width) / 10.0,
                len(node.predicates) / 4.0,
                magnitude,
                eq_fraction,
            ])
        return np.asarray(rows, dtype=np.float64)

    # ------------------------------------------------------------------ #
    def encode_plan(self, plan: CaughtPlan) -> np.ndarray:
        """Node encodings of shape (n, self.dim), dtype float64.

        float64 is the encoding contract: every downstream consumer
        (autograd tensors, the graph-free serving kernels, the on-disk
        encoding cache) assumes it, and the bit-identity guarantees
        between those paths depend on it.
        """
        if not self.is_fit:
            raise RuntimeError("encoder must be fit before encoding")
        n = plan.num_nodes
        one_hot = np.zeros((n, NUM_NODE_TYPES), dtype=np.float64)
        one_hot[np.arange(n), plan.node_type_ids] = 1.0
        scaled = self.scaler.transform(
            np.stack([self._cards(plan), plan.est_costs], axis=1)
        )
        parts = [one_hot, scaled]
        if self.extra_features:
            parts.append(self._extra(plan))
        return np.concatenate(parts, axis=1)

    def encode_plans(self, plans: Sequence[CaughtPlan]) -> List[np.ndarray]:
        """Vectorized :meth:`encode_plan` over many plans at once.

        Concatenates every plan's (card, cost) rows into one array, runs a
        single scaler transform and a single one-hot scatter over the
        whole workload, then splits back per plan.  The scaler is purely
        elementwise, so each returned array is bit-identical to what
        ``encode_plan`` produces for that plan — this is what lets the
        training pipeline encode a dataset once without changing a single
        bit of the gradient schedule.
        """
        if not plans:
            return []
        if not self.is_fit:
            raise RuntimeError("encoder must be fit before encoding")
        counts = [plan.num_nodes for plan in plans]
        raw = np.concatenate([
            np.stack([self._cards(plan), plan.est_costs], axis=1)
            for plan in plans
        ], axis=0)
        scaled = self.scaler.transform(raw)
        type_ids = np.concatenate([plan.node_type_ids for plan in plans])
        total = type_ids.shape[0]
        one_hot = np.zeros((total, NUM_NODE_TYPES), dtype=np.float64)
        one_hot[np.arange(total), type_ids] = 1.0
        parts = [one_hot, scaled]
        if self.extra_features:
            parts.append(np.concatenate(
                [self._extra(plan) for plan in plans], axis=0
            ))
        stacked = np.concatenate(parts, axis=1)
        offsets = np.cumsum(counts)[:-1]
        return np.split(stacked, offsets, axis=0)

    def encode_batch(
        self,
        plans: Sequence[CaughtPlan],
        with_labels: bool = True,
        pad_to: Optional[int] = None,
        node_features: Optional[Sequence[np.ndarray]] = None,
    ) -> EncodedBatch:
        """Pad a list of plans into one batch.

        ``pad_to`` forces the padded width up to at least that many nodes
        (plans wider than ``pad_to`` still pad to the batch maximum).  A
        fixed width makes each plan's forward-pass bits independent of
        whatever it happens to be batched with — the foundation of the
        serving stack's determinism guarantee under concurrent batching.

        ``node_features`` supplies precomputed :meth:`encode_plan` arrays
        (one per plan, same order), letting callers fan the pure-Python
        encoding loop out across worker threads and keep only the cheap
        padded assembly here.  The arrays must be exactly what
        ``encode_plan`` returns, so assembly stays bit-identical.
        """
        if not plans:
            raise ValueError("empty batch")
        if node_features is not None and len(node_features) != len(plans):
            raise ValueError(
                f"got {len(node_features)} precomputed encodings "
                f"for {len(plans)} plans"
            )
        batch = len(plans)
        n_max = max(plan.num_nodes for plan in plans)
        if pad_to is not None:
            n_max = max(n_max, pad_to)
        if node_features is None:
            # One vectorized encoding pass over the whole batch (bit-
            # identical to per-plan encode_plan calls; see encode_plans).
            node_features = self.encode_plans(plans)

        features = np.zeros((batch, n_max, self.dim), dtype=np.float64)
        attention = np.zeros((batch, n_max, n_max), dtype=bool)
        valid = np.zeros((batch, n_max), dtype=bool)
        heights = np.zeros((batch, n_max), dtype=np.int64)
        weights = np.zeros((batch, n_max), dtype=np.float64)
        labels: Optional[np.ndarray] = None
        if with_labels:
            labels = np.zeros((batch, n_max), dtype=np.float64)

        for index, plan in enumerate(plans):
            n = plan.num_nodes
            features[index, :n] = node_features[index]
            attention[index, :n, :n] = plan.adjacency
            valid[index, :n] = True
            heights[index, :n] = plan.heights
            if with_labels:
                # Loss weights only matter when a loss will be computed;
                # label-free (inference) batches keep the zero fill and
                # skip the per-plan height walk on the serving hot path.
                weights[index, :n] = loss_weights(plan.heights, self.alpha)
                if plan.actual_times is None:
                    raise ValueError("plan has no labels; executed plans needed")
                labels[index, :n] = np.log(
                    np.maximum(plan.actual_times, LABEL_EPS_MS)
                )
            # Padding rows attend to themselves so softmax rows stay finite.
            if n < n_max:
                pad = np.arange(n, n_max)
                attention[index, pad, pad] = True
        return EncodedBatch(
            features=features,
            attention_mask=attention,
            valid=valid,
            heights=heights,
            loss_weights=weights,
            labels_log=labels,
        )

    # ------------------------------------------------------------------ #
    def encode_plan_nodes(self, plan: PlanNode) -> EncodedBatch:
        """Convenience: catch + encode a single raw plan (no labels)."""
        return self.encode_batch([catch_plan(plan)], with_labels=False)

    def state(self) -> dict:
        return {
            "alpha": self.alpha,
            "card_source": self.card_source,
            **self.scaler.state(),
        }

    def load_state(self, state: dict) -> None:
        self.alpha = float(state["alpha"])
        self.card_source = str(state.get("card_source", "estimated"))
        self.scaler.load_state(state)
