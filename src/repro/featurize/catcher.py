"""The information catcher (paper Fig 3, Sec. IV-B).

Walks a query-plan tree by pre-order DFS and extracts, per node:

- the node type and the DBMS-estimated cardinality and cost (features),
- the reflexive-transitive partial-order adjacency matrix ``A(p)`` where
  ``A[i, j] = 1`` iff node ``i`` is an ancestor of node ``j`` or ``i == j``
  (eq. 2–3) — the tree-structured attention mask,
- node heights, defined as *the length of the path from the node to the
  root* (used by the loss adjuster),
- the actual per-sub-plan execution times when the plan was executed
  (labels).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.engine.plan import NODE_TYPE_INDEX, PlanNode


# str(dtype) costs ~µs per call, which would dominate the warm-cache
# serving path (fingerprints are recomputed per lookup): memoize it.
_DTYPE_BYTES: dict = {}


def _hash_field(digest, tag: bytes, array: np.ndarray) -> None:
    """Frame one array as ``tag:dtype:length:bytes`` inside the digest."""
    dtype_bytes = _DTYPE_BYTES.get(array.dtype)
    if dtype_bytes is None:
        dtype_bytes = str(array.dtype).encode("ascii")
        _DTYPE_BYTES[array.dtype] = dtype_bytes
    digest.update(
        tag + b":" + dtype_bytes + b":" + struct.pack("<q", array.size)
    )
    digest.update(array.tobytes())


@dataclass
class CaughtPlan:
    """Everything the encoder needs from one plan."""

    nodes: List[PlanNode]            # pre-order DFS sequence
    node_type_ids: np.ndarray        # (n,) int
    est_rows: np.ndarray             # (n,) float
    est_costs: np.ndarray            # (n,) float, cumulative per node
    adjacency: np.ndarray            # (n, n) bool, ancestor-or-self
    heights: np.ndarray              # (n,) int, distance to root
    parents: np.ndarray              # (n,) int, parent DFS index (-1 root)
    actual_times: Optional[np.ndarray]  # (n,) float ms, None if not executed
    actual_rows: Optional[np.ndarray]   # (n,) float, None if not executed
    _fingerprint: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def fingerprint(self) -> str:
        """Stable content hash of everything the DACE encoding consumes.

        Covers node types, tree structure (parent links), and the DBMS
        estimates — plus the actual cardinalities when present, so the
        ``card_source="actual"`` oracle variant never aliases.  Two plans
        with the same fingerprint produce the same encoded features, which
        makes this the key for serving-time encoding/prediction caches.

        Each field is framed with a tag, its dtype, and its length before
        the raw bytes, so differently-shaped field splits whose
        concatenated bytes happen to coincide can never collide.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            _hash_field(digest, b"types", self.node_type_ids)
            _hash_field(digest, b"parents", self.parents)
            _hash_field(digest, b"rows", self.est_rows)
            _hash_field(digest, b"costs", self.est_costs)
            if self.actual_rows is not None:
                _hash_field(digest, b"arows", self.actual_rows)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def distance_matrix(self) -> np.ndarray:
        """Tree path length between every node pair (QueryFormer's bias)."""
        n = self.num_nodes
        depths = self.heights
        # Ancestor sets are encoded in `adjacency`; LCA depth for (i, j) is
        # the max depth among common ancestors (including i or j itself).
        distances = np.zeros((n, n), dtype=np.int64)
        ancestors = [np.nonzero(self.adjacency[:, j])[0] for j in range(n)]
        for i in range(n):
            set_i = set(ancestors[i].tolist())
            for j in range(i + 1, n):
                common = [a for a in ancestors[j] if a in set_i]
                lca_depth = max(depths[a] for a in common)
                d = depths[i] + depths[j] - 2 * lca_depth
                distances[i, j] = d
                distances[j, i] = d
        return distances

    @property
    def root_actual_time(self) -> float:
        if self.actual_times is None:
            raise ValueError("plan was not executed; no labels available")
        return float(self.actual_times[0])


def catch_plan(plan: PlanNode) -> CaughtPlan:
    """Extract features, tree structure, and labels from a plan tree."""
    nodes: List[PlanNode] = []
    heights: List[int] = []
    parents: List[int] = []  # parent index per DFS position (-1 for root)

    def visit(node: PlanNode, height: int, parent_index: int) -> None:
        index = len(nodes)
        nodes.append(node)
        heights.append(height)
        parents.append(parent_index)
        for child in node.children:
            visit(child, height + 1, index)

    visit(plan, 0, -1)
    n = len(nodes)

    adjacency = np.zeros((n, n), dtype=bool)
    for index in range(n):
        adjacency[index, index] = True  # reflexivity
        ancestor = parents[index]
        while ancestor >= 0:  # transitivity up the parent chain
            adjacency[ancestor, index] = True
            ancestor = parents[ancestor]

    executed = all(node.actual_time_ms is not None for node in nodes)
    actual = (
        np.array([node.actual_time_ms for node in nodes], dtype=np.float64)
        if executed
        else None
    )
    actual_rows = (
        np.array([node.actual_rows for node in nodes], dtype=np.float64)
        if executed
        else None
    )
    return CaughtPlan(
        nodes=nodes,
        node_type_ids=np.array(
            [NODE_TYPE_INDEX[node.node_type] for node in nodes], dtype=np.int64
        ),
        est_rows=np.array([node.est_rows for node in nodes], dtype=np.float64),
        est_costs=np.array([node.est_cost for node in nodes], dtype=np.float64),
        adjacency=adjacency,
        heights=np.array(heights, dtype=np.int64),
        parents=np.array(parents, dtype=np.int64),
        actual_times=actual,
        actual_rows=actual_rows,
    )
