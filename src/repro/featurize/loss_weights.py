"""The loss adjuster's tree-structure-based weights (paper eq. 4).

``weight_i = alpha ** height_i``: the root gets weight 1, deeper nodes get
exponentially smaller weights.  ``alpha = 0`` trains on the root only
("DACE w/o SP"); ``alpha = 1`` weights every sub-plan equally, reproducing
QPPNet's information redundancy ("DACE w/o LA"); the paper's value is 0.5.
"""

from __future__ import annotations

import numpy as np

DEFAULT_ALPHA = 0.5


def loss_weights(heights: np.ndarray, alpha: float = DEFAULT_ALPHA) -> np.ndarray:
    """Per-node loss weights from node heights (eq. 4)."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    heights = np.asarray(heights, dtype=np.float64)
    if alpha == 0.0:
        # 0**0 == 1 for the root; every other node gets 0.
        return (heights == 0).astype(np.float64)
    return alpha**heights
