"""Feature extraction for plan-based models (paper Sec. IV-B).

- :mod:`repro.featurize.catcher` — the *information catcher*: DFS node
  sequence, the partial-order adjacency matrix ``A(p)``, node heights.
- :mod:`repro.featurize.encoder` — the *encoder*: one-hot node types,
  robust-scaled DBMS estimates, padded batching.
- :mod:`repro.featurize.loss_weights` — the loss adjuster's
  ``alpha ** height`` weights.
"""

from repro.featurize.catcher import CaughtPlan, catch_plan
from repro.featurize.encoder import EncodedBatch, PlanEncoder, RobustScaler
from repro.featurize.loss_weights import loss_weights

__all__ = [
    "CaughtPlan",
    "catch_plan",
    "RobustScaler",
    "PlanEncoder",
    "EncodedBatch",
    "loss_weights",
]
