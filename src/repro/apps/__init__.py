"""Downstream applications of cost estimation (paper Sec. I).

The paper motivates cost estimation with two applications:

- **query optimization** — choosing among candidate execution plans
  (:mod:`repro.apps.plan_selection`, Bao/Leon-style plan steering), and
- **resource allocation / scheduling** — ordering a workload by predicted
  latency (:mod:`repro.apps.scheduling`, Auto-WLM-style).

Both consume any model exposing ``predict_plan``/``predict_ms`` — DACE, a
baseline, or the raw corrected optimizer cost — so the benefit of a better
estimator can be measured end to end.
"""

from repro.apps.plan_selection import PlanSelectionResult, PlanSelector
from repro.apps.scheduling import ScheduleResult, WorkloadScheduler
from repro.apps.online import OnlineResult, OnlineWorkloadSimulator
from repro.apps.index_advisor import AdvisorResult, IndexAdvisor, IndexRecommendation

__all__ = [
    "PlanSelector",
    "PlanSelectionResult",
    "WorkloadScheduler",
    "ScheduleResult",
    "OnlineWorkloadSimulator",
    "OnlineResult",
    "IndexAdvisor",
    "AdvisorResult",
    "IndexRecommendation",
]
