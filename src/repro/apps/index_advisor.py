"""What-if index advising driven by a cost model.

The classic "AI meets AI" application the paper cites ([3], Ding et al.):
propose secondary indexes for a workload by *hypothetically* adding each
candidate to the planner (what-if planning, like HypoPG), re-planning the
workload, and scoring the improvement with a cost model — either the
optimizer's own cost or a learned estimator's predicted latency.  The
greedy loop picks the best candidate per round until the budget is spent
or nothing helps.

Because the simulated executor prices index scans realistically, a
recommendation's *actual* benefit can be verified by executing the re-
planned workload — `evaluate` reports both estimated and simulated-actual
speedups.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.plan import PlanNode
from repro.engine.planner import Planner
from repro.engine.session import EngineSession
from repro.serve.estimator import as_plan_scorers
from repro.sql.query import Query

PlanScorer = Callable[[PlanNode], float]


@dataclass(frozen=True)
class IndexRecommendation:
    """One recommended index with its estimated per-round benefit."""

    table: str
    column: str
    estimated_benefit: float     # workload score reduction when added
    round: int

    @property
    def name(self) -> str:
        return f"{self.table}({self.column})"


@dataclass
class AdvisorResult:
    """Outcome of a greedy advising run."""

    recommendations: List[IndexRecommendation]
    base_score: float
    final_score: float
    candidates_considered: int

    @property
    def estimated_speedup(self) -> float:
        return self.base_score / max(self.final_score, 1e-12)


class IndexAdvisor:
    """Greedy what-if index advisor over one database session."""

    def __init__(
        self,
        session: EngineSession,
        scorer: Optional[PlanScorer] = None,
        max_indexes: int = 3,
        min_improvement: float = 0.01,
    ) -> None:
        """``scorer`` maps a plan to a cost (lower is better); defaults to
        the optimizer's estimated cost.  Pass a fitted estimator (or its
        bound ``predict_plan``) to advise with learned latency
        predictions instead; estimators exposing ``predict_plans`` score
        each what-if workload in one batched call."""
        if max_indexes < 1:
            raise ValueError("max_indexes must be >= 1")
        self.session = session
        if scorer is None:
            scorer = lambda plan: plan.est_cost  # noqa: E731
        self.scorer, self._scorer_batch = as_plan_scorers(scorer)
        self.max_indexes = max_indexes
        self.min_improvement = min_improvement

    # ------------------------------------------------------------------ #
    def candidate_indexes(
        self, queries: Sequence[Query]
    ) -> List[Tuple[str, str]]:
        """(table, column) pairs filtered by the workload but not indexed,
        most-frequently-filtered first."""
        base_planner = self.session.planner
        counts: Counter = Counter()
        for query in queries:
            for predicate in query.predicates:
                counts[(predicate.table, predicate.column)] += 1
        candidates = []
        for (table, column), _ in counts.most_common():
            if column not in base_planner.indexed_columns(table):
                candidates.append((table, column))
        return candidates

    def _planner_with(self, extra: Dict[str, set]) -> Planner:
        return Planner(
            self.session.database.schema,
            self.session.estimator,
            self.session.planner.cost_model,
            extra_indexes={t: sorted(c) for t, c in extra.items()},
        )

    def _workload_score(
        self, planner: Planner, queries: Sequence[Query]
    ) -> float:
        plans = [planner.plan(query) for query in queries]
        if self._scorer_batch is not None:
            return float(np.sum(self._scorer_batch(plans)))
        return float(sum(self.scorer(plan) for plan in plans))

    # ------------------------------------------------------------------ #
    def advise(self, queries: Sequence[Query]) -> AdvisorResult:
        """Greedy rounds: add whichever candidate index helps most."""
        if not queries:
            raise ValueError("empty workload")
        chosen: Dict[str, set] = {}
        recommendations: List[IndexRecommendation] = []
        candidates = self.candidate_indexes(queries)
        base_score = self._workload_score(
            self._planner_with(chosen), queries
        )
        current = base_score
        for round_number in range(1, self.max_indexes + 1):
            best: Optional[Tuple[float, str, str]] = None
            for table, column in candidates:
                if column in chosen.get(table, set()):
                    continue
                trial = {t: set(c) for t, c in chosen.items()}
                trial.setdefault(table, set()).add(column)
                score = self._workload_score(
                    self._planner_with(trial), queries
                )
                if best is None or score < best[0]:
                    best = (score, table, column)
            if best is None:
                break
            score, table, column = best
            improvement = (current - score) / max(current, 1e-12)
            if improvement < self.min_improvement:
                break
            chosen.setdefault(table, set()).add(column)
            recommendations.append(IndexRecommendation(
                table=table,
                column=column,
                estimated_benefit=current - score,
                round=round_number,
            ))
            current = score
        return AdvisorResult(
            recommendations=recommendations,
            base_score=base_score,
            final_score=current,
            candidates_considered=len(candidates),
        )

    # ------------------------------------------------------------------ #
    def evaluate(
        self, queries: Sequence[Query], result: AdvisorResult
    ) -> dict:
        """Simulate the workload with and without the recommended indexes.

        Returns estimated and *actual* (simulated-execution) total
        latencies — the ground-truth check a real advisor cannot do.
        """
        chosen: Dict[str, set] = {}
        for recommendation in result.recommendations:
            chosen.setdefault(recommendation.table, set()).add(
                recommendation.column
            )
        executor = self.session.executor
        base_planner = self._planner_with({})
        new_planner = self._planner_with(chosen)
        base_ms = new_ms = 0.0
        for query in queries:
            base_ms += executor.execute(
                base_planner.plan(query), query
            ).actual_time_ms
            new_ms += executor.execute(
                new_planner.plan(query), query
            ).actual_time_ms
        return {
            "base_latency_ms": base_ms,
            "indexed_latency_ms": new_ms,
            "actual_speedup": base_ms / max(new_ms, 1e-12),
            "estimated_speedup": result.estimated_speedup,
        }
