"""Learned plan selection: re-rank the optimizer's candidate plans.

The classic "plan steering" application (Bao [17], Leon [1]): the native
optimizer enumerates its top-k candidate plans (beam DP); a cost model
re-ranks them by predicted latency and the winner is executed.  A better
cost estimator translates directly into lower end-to-end latency, which is
the practical payoff the paper's introduction promises.

``PlanSelector`` works with any estimator exposing ``predict_plan`` (DACE)
or a callable; ``evaluate_workload`` quantifies the speedup over the
optimizer's own choice and the remaining gap to the oracle (the truly
fastest candidate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.engine.plan import PlanNode
from repro.engine.session import EngineSession
from repro.serve.estimator import as_plan_scorers
from repro.sql.query import Query

PlanScorer = Callable[[PlanNode], float]


@dataclass
class PlanSelectionResult:
    """Aggregate outcome of selecting plans over a workload."""

    native_latency_ms: float      # always executing the optimizer's choice
    selected_latency_ms: float    # executing the model's choice
    oracle_latency_ms: float      # executing the best candidate (hindsight)
    queries: int
    changed_plans: int            # how often the model overrode the optimizer
    regressions: int              # overrides that ended up slower
    per_query: List[dict] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Total-latency speedup of model selection over the optimizer."""
        return self.native_latency_ms / max(self.selected_latency_ms, 1e-12)

    @property
    def oracle_gap(self) -> float:
        """How far the model's choices are from hindsight-optimal (>= 1)."""
        return self.selected_latency_ms / max(self.oracle_latency_ms, 1e-12)


class PlanSelector:
    """Chooses among candidate plans with a learned cost model."""

    def __init__(
        self,
        session: EngineSession,
        scorer: Union[PlanScorer, "object"],
        candidates: int = 6,
    ) -> None:
        """``scorer`` is either a callable plan -> predicted ms, or any
        Estimator (an object with ``predict_plan``, e.g. a fitted DACE or
        an :class:`~repro.serve.service.EstimatorService`).  Estimators
        that also expose ``predict_plans`` get their candidates scored in
        one batched call."""
        if candidates < 2:
            raise ValueError("plan selection needs at least 2 candidates")
        self.session = session
        self._score, self._score_batch = as_plan_scorers(scorer)
        self.candidates = candidates

    def _scores(self, plans: Sequence[PlanNode]) -> np.ndarray:
        if self._score_batch is not None:
            return np.asarray(self._score_batch(plans), dtype=np.float64)
        return np.array([self._score(plan) for plan in plans])

    # ------------------------------------------------------------------ #
    def select(self, query: Query) -> PlanNode:
        """The candidate plan with the lowest predicted latency."""
        plans = self.session.planner.candidate_plans(query, k=self.candidates)
        return plans[int(np.argmin(self._scores(plans)))]

    def evaluate_workload(
        self, queries: Sequence[Query]
    ) -> PlanSelectionResult:
        """Execute native choice, model choice, and oracle per query."""
        executor = self.session.executor
        native_total = selected_total = oracle_total = 0.0
        changed = regressions = 0
        per_query: List[dict] = []
        for query in queries:
            plans = self.session.planner.candidate_plans(
                query, k=self.candidates
            )
            latencies = [
                executor.execute(plan, query).actual_time_ms
                for plan in plans
            ]
            scores = self._scores(plans)
            native = latencies[0]          # candidate 0 = optimizer's pick
            chosen = int(np.argmin(scores))
            selected = latencies[chosen]
            oracle = min(latencies)
            native_total += native
            selected_total += selected
            oracle_total += oracle
            if chosen != 0:
                changed += 1
                if selected > native * 1.001:
                    regressions += 1
            per_query.append({
                "native_ms": native,
                "selected_ms": selected,
                "oracle_ms": oracle,
                "chosen_index": chosen,
                "candidates": len(plans),
            })
        return PlanSelectionResult(
            native_latency_ms=native_total,
            selected_latency_ms=selected_total,
            oracle_latency_ms=oracle_total,
            queries=len(per_query),
            changed_plans=changed,
            regressions=regressions,
            per_query=per_query,
        )


def optimizer_cost_scorer(session: EngineSession) -> PlanScorer:
    """Baseline scorer: the optimizer's own estimated cost (cheapest-cost
    selection — always picks candidate 0, the native behaviour)."""

    def score(plan: PlanNode) -> float:
        return plan.est_cost

    return score
