"""Online workload management: arrivals, queueing, admission control.

Extends the batch scheduler with the setting Auto-WLM actually operates
in: queries *arrive over time* (Poisson process), wait in a queue, and are
dispatched to a bounded worker pool.  Two estimator-driven mechanisms are
simulated:

- **priority scheduling** — dispatch the queued query with the smallest
  predicted latency first (SJF), which cuts mean waiting time when the
  predictions rank queries correctly;
- **admission control** — queries whose *predicted* latency exceeds an SLA
  are rejected up front.  A good estimator rejects exactly the true
  long-runners (protecting the cluster) without turning away short ones;
  the confusion matrix against true latencies quantifies that.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.serve.estimator import resolve_predictions
from repro.workloads.dataset import PlanDataset


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of one online simulation."""

    policy: str
    completed: int
    rejected: int
    mean_wait_ms: float
    p95_wait_ms: float
    mean_response_ms: float      # wait + execution
    sla_violations: int          # completed queries exceeding the SLA
    false_rejects: int           # rejected although truly under the SLA

    def __str__(self) -> str:
        return (
            f"{self.policy}: completed={self.completed} "
            f"rejected={self.rejected} mean wait={self.mean_wait_ms:.1f}ms "
            f"violations={self.sla_violations}"
        )


@dataclass(order=True)
class _Queued:
    priority: float
    sequence: int
    arrival_ms: float = field(compare=False)
    duration_ms: float = field(compare=False)
    predicted_ms: float = field(compare=False)


class OnlineWorkloadSimulator:
    """Event-driven simulation of a worker pool fed by Poisson arrivals."""

    def __init__(
        self,
        workers: int = 4,
        seed: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.seed = seed

    def _arrivals(self, count: int, mean_gap_ms: float) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(mean_gap_ms, size=count)
        return np.cumsum(gaps)

    def run(
        self,
        dataset: PlanDataset,
        predicted_ms,
        mean_gap_ms: Optional[float] = None,
        policy: str = "sjf",
        sla_ms: Optional[float] = None,
        policy_name: Optional[str] = None,
    ) -> OnlineResult:
        """Simulate one policy over the dataset's queries.

        Args:
            predicted_ms: the estimator's latency predictions (drives both
                the queue priority and admission control) — a per-query
                array, or any Estimator (an object with ``predict``) to
                run over the dataset here.
            mean_gap_ms: mean inter-arrival gap; defaults to 60% of the
                mean true duration divided by workers (a loaded system).
            policy: "fifo" or "sjf" (priority = predicted latency).
            sla_ms: when set, queries predicted above it are rejected.
        """
        if policy not in ("fifo", "sjf"):
            raise ValueError(f"unknown policy {policy!r}")
        predicted = resolve_predictions(predicted_ms, dataset)
        durations = dataset.latencies()
        if predicted.shape != durations.shape:
            raise ValueError("one prediction per query required")
        if mean_gap_ms is None:
            mean_gap_ms = 0.6 * float(durations.mean()) / self.workers
        arrivals = self._arrivals(len(durations), mean_gap_ms)

        rejected = false_rejects = 0
        admitted: List[_Queued] = []
        for index in range(len(durations)):
            if sla_ms is not None and predicted[index] > sla_ms:
                rejected += 1
                if durations[index] <= sla_ms:
                    false_rejects += 1
                continue
            priority = (
                predicted[index] if policy == "sjf" else arrivals[index]
            )
            admitted.append(_Queued(
                priority=float(priority),
                sequence=index,
                arrival_ms=float(arrivals[index]),
                duration_ms=float(durations[index]),
                predicted_ms=float(predicted[index]),
            ))

        admitted.sort(key=lambda job: job.arrival_ms)
        queue: List[_Queued] = []
        free_at = [0.0] * self.workers
        waits: List[float] = []
        responses: List[float] = []
        violations = 0
        pending = iter(admitted)
        next_job = next(pending, None)
        # Event loop: advance to whichever happens first — an arrival or a
        # worker freeing up with the queue non-empty.
        while next_job is not None or queue:
            earliest_free = min(free_at)
            if next_job is not None and (
                not queue or next_job.arrival_ms <= earliest_free
            ):
                heapq.heappush(queue, next_job)
                next_job = next(pending, None)
                continue
            job = heapq.heappop(queue)
            worker = int(np.argmin(free_at))
            start = max(free_at[worker], job.arrival_ms)
            finish = start + job.duration_ms
            free_at[worker] = finish
            waits.append(start - job.arrival_ms)
            responses.append(finish - job.arrival_ms)
            if sla_ms is not None and job.duration_ms > sla_ms:
                violations += 1

        name = policy_name or (
            f"{policy.upper()}" + (" + admission" if sla_ms else "")
        )
        return OnlineResult(
            policy=name,
            completed=len(waits),
            rejected=rejected,
            mean_wait_ms=float(np.mean(waits)) if waits else 0.0,
            p95_wait_ms=float(np.percentile(waits, 95)) if waits else 0.0,
            mean_response_ms=(
                float(np.mean(responses)) if responses else 0.0
            ),
            sla_violations=violations,
            false_rejects=false_rejects,
        )

    def compare(
        self,
        dataset: PlanDataset,
        predicted_ms,
        sla_ms: Optional[float] = None,
        mean_gap_ms: Optional[float] = None,
    ) -> List[OnlineResult]:
        """FIFO vs predicted-SJF vs oracle-SJF under identical arrivals.

        ``predicted_ms`` may be an array or an Estimator (resolved once,
        shared by every policy)."""
        predicted = resolve_predictions(predicted_ms, dataset)
        oracle = dataset.latencies()
        results = [
            self.run(dataset, predicted, mean_gap_ms, "fifo",
                     sla_ms, "FIFO"),
            self.run(dataset, predicted, mean_gap_ms, "sjf",
                     sla_ms, "SJF (model)"),
            self.run(dataset, oracle, mean_gap_ms, "sjf",
                     sla_ms, "SJF (oracle)"),
        ]
        return results
