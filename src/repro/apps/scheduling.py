"""Latency-aware workload scheduling (the paper's Auto-WLM motivation).

A batch of queries must be placed on ``n`` workers.  Shortest-job-first
(SJF) minimizes mean flow time — *if* the job lengths are known.  A cost
estimator supplies predicted latencies; the better the estimator, the
closer model-SJF gets to oracle-SJF, and the further it pulls ahead of
FIFO.  ``WorkloadScheduler`` simulates all three policies on the labelled
workload so estimator quality shows up as scheduling quality.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.serve.estimator import resolve_predictions
from repro.workloads.dataset import PlanDataset


@dataclass(frozen=True)
class ScheduleResult:
    """Simulation outcome for one scheduling policy."""

    policy: str
    makespan_ms: float
    mean_flow_time_ms: float   # mean (completion - arrival=0) over queries
    p95_flow_time_ms: float

    def __str__(self) -> str:
        return (f"{self.policy}: makespan={self.makespan_ms:.1f}ms "
                f"mean flow={self.mean_flow_time_ms:.1f}ms "
                f"p95 flow={self.p95_flow_time_ms:.1f}ms")


def _simulate(durations: Sequence[float], order: Sequence[int],
              workers: int, policy: str) -> ScheduleResult:
    """List scheduling: each next job goes to the earliest-free worker."""
    free_at = [0.0] * workers
    completions = np.zeros(len(durations))
    for index in order:
        worker = min(range(workers), key=free_at.__getitem__)
        start = free_at[worker]
        finish = start + durations[index]
        free_at[worker] = finish
        completions[index] = finish
    return ScheduleResult(
        policy=policy,
        makespan_ms=float(max(free_at)),
        mean_flow_time_ms=float(completions.mean()),
        p95_flow_time_ms=float(np.percentile(completions, 95)),
    )


class WorkloadScheduler:
    """Simulates FIFO vs predicted-SJF vs oracle-SJF on a workload."""

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers

    def fifo(self, dataset: PlanDataset) -> ScheduleResult:
        durations = dataset.latencies()
        return _simulate(durations, range(len(durations)), self.workers,
                         "FIFO")

    def sjf_oracle(self, dataset: PlanDataset) -> ScheduleResult:
        durations = dataset.latencies()
        order = np.argsort(durations)
        return _simulate(durations, order, self.workers, "SJF (oracle)")

    def sjf_predicted(
        self, dataset: PlanDataset, predicted_ms,
        policy_name: str = "SJF (model)",
    ) -> ScheduleResult:
        """``predicted_ms`` is a per-query latency array, or any Estimator
        (an object with ``predict``) to run over the dataset here."""
        predicted = resolve_predictions(predicted_ms, dataset)
        if predicted.shape != (len(dataset),):
            raise ValueError("one prediction per query required")
        durations = dataset.latencies()
        order = np.argsort(predicted)
        return _simulate(durations, order, self.workers, policy_name)

    def compare(
        self, dataset: PlanDataset, predicted_ms,
        policy_name: str = "SJF (model)",
    ) -> List[ScheduleResult]:
        """FIFO, model-SJF, oracle-SJF on the same workload.

        ``predicted_ms`` may be an array or an Estimator (resolved once,
        shared by every policy)."""
        predicted = resolve_predictions(predicted_ms, dataset)
        return [
            self.fifo(dataset),
            self.sjf_predicted(dataset, predicted, policy_name),
            self.sjf_oracle(dataset),
        ]
