"""The optimizer's cardinality estimator (the *wrong-on-purpose* one).

This mirrors PostgreSQL's selectivity machinery: per-column statistics,
conjunctive predicates combined under the **attribute independence
assumption**, and join selectivity from distinct counts (``eqjoinsel``).
Those assumptions fail on correlated columns and skewed FK fan-outs, and
the resulting systematic errors are precisely the EDQO that DACE learns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.catalog.stats import TableStats
from repro.sql.query import Join, Predicate, Query

MIN_SELECTIVITY = 1e-7
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


class CardinalityEstimator:
    """Estimates scan and join cardinalities from table statistics."""

    def __init__(self, stats: Dict[str, TableStats]) -> None:
        self.stats = stats

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def predicate_selectivity(self, predicate: Predicate) -> float:
        table_stats = self.stats.get(predicate.table)
        if table_stats is None or predicate.column not in table_stats.columns:
            return (
                DEFAULT_EQ_SELECTIVITY
                if predicate.op == "="
                else DEFAULT_RANGE_SELECTIVITY
            )
        column = table_stats.columns[predicate.column]
        if predicate.op == "in":
            # Sum of equality selectivities, capped at the non-null mass.
            sel = min(
                sum(column.selectivity_eq(v) for v in predicate.values),
                max(0.0, 1.0 - column.null_frac),
            )
        elif predicate.op == "=":
            sel = column.selectivity_eq(predicate.value)
        elif predicate.op == "!=":
            sel = max(0.0, 1.0 - column.null_frac
                      - column.selectivity_eq(predicate.value))
        elif predicate.op == "<":
            # Exclusive bound: nudge below the value so an MCV exactly at
            # the boundary is not counted.
            sel = column.selectivity_range(
                float("-inf"), float(np.nextafter(predicate.value, -np.inf))
            )
        elif predicate.op == "<=":
            sel = column.selectivity_range(float("-inf"), predicate.value)
        elif predicate.op == ">":
            sel = column.selectivity_range(
                float(np.nextafter(predicate.value, np.inf)), float("inf")
            )
        else:  # ">="
            sel = column.selectivity_range(predicate.value, float("inf"))
        return float(min(max(sel, MIN_SELECTIVITY), 1.0))

    def scan_selectivity(self, predicates: Sequence[Predicate]) -> float:
        """Conjunction under independence (clauselist_selectivity)."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(predicate)
        return max(selectivity, MIN_SELECTIVITY)

    def scan_rows(self, table: str, predicates: Sequence[Predicate]) -> float:
        rows = self.stats[table].num_rows
        return max(1.0, rows * self.scan_selectivity(predicates))

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def _column_stats(self, table: str, column: str):
        table_stats = self.stats.get(table)
        if table_stats is None:
            return None
        return table_stats.columns.get(column)

    def join_selectivity(self, join: Join) -> float:
        """PG's eqjoinsel: MCV-list matching plus 1/max(nd) for the rest.

        When both join columns have most-common-value statistics, the
        selectivity of the matching MCV pairs is computed exactly (this is
        what keeps PostgreSQL sane on skewed join keys); the non-MCV
        remainder falls back to the classic ``1 / max(n_distinct)``.
        """
        left = self._column_stats(join.left_table, join.left_column)
        right = self._column_stats(join.right_table, join.right_column)
        if left is None and right is None:
            return DEFAULT_EQ_SELECTIVITY
        if left is None or right is None:
            present = left if left is not None else right
            return 1.0 / max(1.0, present.n_distinct)

        nd1 = max(1.0, left.n_distinct)
        nd2 = max(1.0, right.n_distinct)
        if left.mcv_values.size == 0 or right.mcv_values.size == 0:
            return 1.0 / max(nd1, nd2)

        # Matched MCV mass (exact part of eqjoinsel).
        matched = 0.0
        matched_frac1 = 0.0
        matched_frac2 = 0.0
        right_index = {
            float(v): float(f)
            for v, f in zip(right.mcv_values, right.mcv_fractions)
        }
        for value, frac1 in zip(left.mcv_values, left.mcv_fractions):
            frac2 = right_index.get(float(value))
            if frac2 is not None:
                matched += float(frac1) * frac2
                matched_frac1 += float(frac1)
                matched_frac2 += frac2
        # Remainder: unmatched mass joins under uniformity over the
        # leftover distinct values.
        rest1 = max(0.0, 1.0 - left.null_frac - matched_frac1)
        rest2 = max(0.0, 1.0 - right.null_frac - matched_frac2)
        other_distinct = max(
            nd1 - left.mcv_values.size, nd2 - right.mcv_values.size, 1.0
        )
        remainder = rest1 * rest2 / other_distinct
        return float(min(max(matched + remainder, MIN_SELECTIVITY), 1.0))

    def join_rows(
        self,
        left_rows: float,
        right_rows: float,
        joins: Iterable[Join],
    ) -> float:
        """Cardinality of a join of two intermediate relations.

        ``joins`` are all join clauses connecting the two sides; clause
        selectivities are multiplied (independence again).
        """
        rows = left_rows * right_rows
        for join in joins:
            rows *= self.join_selectivity(join)
        return max(1.0, rows)

    def group_count_estimate(
        self, query: Query, input_rows: float
    ) -> float:
        """Estimated number of GROUP BY groups (PG's estimate_num_groups):
        the group column's distinct count, clamped by the input size."""
        if query.group_by is None:
            return 1.0
        table, column = query.group_by
        table_stats = self.stats.get(table)
        if table_stats is None or column not in table_stats.columns:
            distinct = 200.0  # PG's default
        else:
            distinct = max(1.0, table_stats.columns[column].n_distinct)
        return max(1.0, min(distinct, input_rows))

    # ------------------------------------------------------------------ #
    def estimate_subset_rows(self, query: Query, tables: Sequence[str]) -> float:
        """Estimated rows of joining a connected subset of query tables."""
        table_set = set(tables)
        rows = 1.0
        # Sorted: float multiplication order must not depend on string
        # hash randomization, or cost ties break differently per process.
        for table in sorted(table_set):
            rows *= self.scan_rows(table, query.predicates_on(table))
        for join in query.joins:
            left, right = join.tables()
            if left in table_set and right in table_set:
                rows *= self.join_selectivity(join)
        return max(1.0, rows)
