"""Physical query-plan trees and EXPLAIN rendering.

A :class:`PlanNode` carries the optimizer-estimated cardinality and cost
(the model inputs) and, after simulated execution, the actual rows and
actual total time (the labels).  The 16 node types match the count the
paper encodes (Sec. V: "we consider a total of 16 node types").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.sql.query import Join, Predicate

NODE_TYPES = (
    "Seq Scan",
    "Index Scan",
    "Index Only Scan",
    "Bitmap Heap Scan",
    "Bitmap Index Scan",
    "Nested Loop",
    "Hash Join",
    "Merge Join",
    "Hash",
    "Sort",
    "Aggregate",
    "Group Aggregate",
    "Materialize",
    "Gather",
    "Limit",
    "Result",
)

NODE_TYPE_INDEX = {name: index for index, name in enumerate(NODE_TYPES)}

SCAN_TYPES = frozenset(
    ["Seq Scan", "Index Scan", "Index Only Scan", "Bitmap Heap Scan"]
)
JOIN_TYPES = frozenset(["Nested Loop", "Hash Join", "Merge Join"])


@dataclass
class PlanNode:
    """One operator in a physical plan tree."""

    node_type: str
    est_rows: float
    est_cost: float  # optimizer total cost (PG cost units), cumulative
    est_startup_cost: float = 0.0
    width: int = 8
    children: List["PlanNode"] = field(default_factory=list)
    # Scan-specific
    table: Optional[str] = None
    predicates: List[Predicate] = field(default_factory=list)
    index_column: Optional[str] = None
    # Join-specific
    join: Optional[Join] = None
    # Filled in by the simulated executor (EXPLAIN ANALYZE equivalents)
    actual_rows: Optional[float] = None
    actual_time_ms: Optional[float] = None  # cumulative, like actual total time
    # For nested-loop inner index scans: rows fetched via the index across
    # all loops, before residual filters (drives the timing model).
    fetched_rows: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node_type not in NODE_TYPE_INDEX:
            raise ValueError(f"unknown node type {self.node_type!r}")
        if self.est_rows < 0 or self.est_cost < 0:
            raise ValueError("negative estimate on plan node")

    # ------------------------------------------------------------------ #
    @property
    def is_scan(self) -> bool:
        return self.node_type in SCAN_TYPES

    @property
    def is_join(self) -> bool:
        return self.node_type in JOIN_TYPES

    def walk_dfs(self) -> Iterator["PlanNode"]:
        """Pre-order DFS — the node order the paper's encoder uses."""
        yield self
        for child in self.children:
            yield from child.walk_dfs()

    def num_nodes(self) -> int:
        return sum(1 for _ in self.walk_dfs())

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def tables_below(self) -> List[str]:
        """All base tables in this subtree, in DFS order."""
        tables = []
        for node in self.walk_dfs():
            if node.table is not None and node.node_type != "Bitmap Index Scan":
                tables.append(node.table)
        return tables

    def clone(self) -> "PlanNode":
        """Deep copy (labels included)."""
        return PlanNode(
            node_type=self.node_type,
            est_rows=self.est_rows,
            est_cost=self.est_cost,
            est_startup_cost=self.est_startup_cost,
            width=self.width,
            children=[child.clone() for child in self.children],
            table=self.table,
            predicates=list(self.predicates),
            index_column=self.index_column,
            join=self.join,
            actual_rows=self.actual_rows,
            actual_time_ms=self.actual_time_ms,
            fetched_rows=self.fetched_rows,
        )


def explain(plan: PlanNode, analyze: bool = False) -> str:
    """Render a plan like PostgreSQL's EXPLAIN [ANALYZE]."""
    lines: List[str] = []

    def render(node: PlanNode, indent: int, arrow: bool) -> None:
        prefix = " " * indent + ("->  " if arrow else "")
        header = (
            f"{node.node_type}"
            + (f" on {node.table}" if node.table else "")
            + (f" using {node.index_column}_idx" if node.index_column else "")
        )
        costs = (
            f"  (cost={node.est_startup_cost:.2f}..{node.est_cost:.2f} "
            f"rows={node.est_rows:.0f} width={node.width})"
        )
        actual = ""
        if analyze and node.actual_time_ms is not None:
            actual = (
                f" (actual time={node.actual_time_ms:.3f} ms "
                f"rows={node.actual_rows:.0f})"
            )
        lines.append(prefix + header + costs + actual)
        detail_indent = indent + (6 if arrow else 2)
        if node.join is not None:
            lines.append(" " * detail_indent + f"Cond: ({node.join})")
        for predicate in node.predicates:
            lines.append(" " * detail_indent + f"Filter: ({predicate})")
        for child in node.children:
            render(child, indent + (6 if arrow else 2), True)

    render(plan, 0, False)
    return "\n".join(lines)
