"""Simulated query execution: true cardinalities -> per-node latencies.

This substitutes for running EXPLAIN ANALYZE on a real machine.  The
executor walks a physical plan, computes each node's *true* row counts on
the generated data (exact, via
:class:`~repro.engine.true_card.TrueCardinalityCalculator`), then charges
each operator a latency from a :class:`~repro.engine.machines.MachineProfile`
with multiplicative lognormal noise.  The result is an annotated plan whose
``actual_time_ms`` per node plays the role of EXPLAIN ANALYZE's
"actual total time" — the training label for every sub-plan.

Latency depends on true cardinalities and machine constants, while the
optimizer's ``est_cost`` depends on estimated cardinalities and abstract
cost units; the gap between the two is the EDQO the paper's models learn.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.catalog.datagen import Database
from repro.engine.machines import M1, MachineProfile
from repro.engine.plan import PlanNode
from repro.engine.true_card import TrueCardinalityCalculator
from repro.sql.query import Query

_INDEX_CACHE_DISCOUNT = 0.2  # repeated NL lookups mostly hit cache


class SimulatedExecutor:
    """Executes plans against one database on one machine profile."""

    def __init__(
        self,
        database: Database,
        machine: MachineProfile = M1,
        seed: int = 0,
    ) -> None:
        self.database = database
        self.machine = machine
        self.calculator = TrueCardinalityCalculator(database)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def _noise(self) -> float:
        sigma = self.machine.noise_sigma
        if sigma == 0:
            return 1.0
        return float(self._rng.lognormal(0.0, sigma))

    def _tree_height(self, table_rows: float) -> float:
        return max(1.0, math.log(max(table_rows, 2.0), 100.0))

    # ------------------------------------------------------------------ #
    def _annotate_rows(self, node: PlanNode, query: Query) -> float:
        """Fill ``actual_rows`` for the subtree; returns this node's rows."""
        calc = self.calculator
        if node.node_type == "Gather":
            rows = self._annotate_rows(node.children[0], query)
        elif node.node_type == "Aggregate":
            self._annotate_rows(node.children[0], query)
            rows = 1.0
        elif node.node_type == "Group Aggregate":
            self._annotate_rows(node.children[0], query)
            if query.group_by is not None:
                table, column = query.group_by
                rows = calc.group_count(query, query.tables, table, column)
            else:
                rows = self._annotate_rows(node.children[0], query)
        elif node.node_type in ("Hash", "Sort", "Materialize", "Result",
                                "Limit"):
            rows = self._annotate_rows(node.children[0], query)
        elif node.is_join:
            outer, inner = node.children
            self._annotate_rows(outer, query)
            rows = calc.subset_rows(query, node.tables_below())
            if (
                node.node_type == "Nested Loop"
                and inner.node_type == "Index Scan"
                and inner.index_column is not None
            ):
                # The inner is probed once per outer row; its cumulative
                # rows are the join's output, and the rows *fetched* via
                # the index (before residual filters) drive its cost.
                inner.actual_rows = rows
                inner.fetched_rows = calc.subset_rows(
                    query,
                    outer.tables_below() + [inner.table],
                    ignore_predicates_on=inner.table,
                )
            else:
                self._annotate_rows(inner, query)
        elif node.node_type == "Bitmap Index Scan":
            rows = float(calc.scan_rows(node.table, node.predicates))
        elif node.is_scan:
            for child in node.children:
                self._annotate_rows(child, query)
            rows = float(calc.scan_rows(node.table, node.predicates))
        else:
            raise ValueError(f"cannot annotate node type {node.node_type}")
        node.actual_rows = rows
        return rows

    # ------------------------------------------------------------------ #
    def _self_time_us(self, node: PlanNode, loops: float) -> float:
        """Latency (microseconds) charged to this node itself, over all loops."""
        m = self.machine
        if loops <= 0.0:
            return 0.0  # never executed
        rows_out = node.actual_rows or 0.0

        if node.node_type in ("Seq Scan",):
            table = self.database.schema.table(node.table)
            scan = table.num_pages * m.seq_page_us
            scan += table.num_rows * m.cpu_tuple_us
            scan += table.num_rows * len(node.predicates) * m.cpu_operator_us
            scan += rows_out * m.emit_us
            return scan * max(loops, 1.0)

        if node.node_type == "Index Scan":
            table = self.database.schema.table(node.table)
            height = self._tree_height(table.num_rows)
            if node.fetched_rows is not None:
                # Nested-loop inner: `loops` probes fetching `fetched_rows`
                # key-matched rows in total, then residual filters.
                if loops <= 0.0:
                    return 0.0
                lookups = loops * height * m.random_page_us * _INDEX_CACHE_DISCOUNT
                fetch = node.fetched_rows * (
                    m.cpu_tuple_us + m.random_page_us * 0.1
                )
                residual = (
                    node.fetched_rows * len(node.predicates) * m.cpu_operator_us
                )
                return lookups + fetch + residual + rows_out * m.emit_us
            lookup = height * m.random_page_us
            fetch = rows_out * (m.cpu_tuple_us + m.random_page_us * 0.5)
            residual = rows_out * len(node.predicates) * m.cpu_operator_us
            return lookup + fetch + residual

        if node.node_type == "Bitmap Index Scan":
            table = self.database.schema.table(node.table)
            height = self._tree_height(table.num_rows)
            return height * m.random_page_us + rows_out * m.cpu_operator_us

        if node.node_type == "Bitmap Heap Scan":
            table = self.database.schema.table(node.table)
            pages = min(float(table.num_pages), rows_out * 0.3 + 1.0)
            time = pages * (m.seq_page_us + m.random_page_us) / 2.0
            time += rows_out * m.cpu_tuple_us
            time += rows_out * len(node.predicates) * m.cpu_operator_us
            return time

        if node.node_type == "Hash":
            build_rows = node.actual_rows or 0.0
            time = build_rows * m.hash_build_us
            if build_rows * node.width > m.work_mem_kb * 1024:
                time *= m.spill_penalty
            return time

        if node.node_type == "Hash Join":
            probe_rows = node.children[0].actual_rows or 0.0
            build_rows = node.children[1].actual_rows or 0.0
            time = probe_rows * m.hash_probe_us + rows_out * m.emit_us
            if build_rows * node.children[1].width > m.work_mem_kb * 1024:
                time *= m.spill_penalty * 0.5 + 0.5
            return time

        if node.node_type == "Nested Loop":
            return rows_out * m.emit_us

        if node.node_type == "Merge Join":
            left = node.children[0].actual_rows or 0.0
            right = node.children[1].actual_rows or 0.0
            return (left + right) * m.sort_cmp_us + rows_out * m.emit_us

        if node.node_type == "Sort":
            rows = max(node.actual_rows or 0.0, 2.0)
            time = rows * math.log2(rows) * m.sort_cmp_us
            if rows * node.width > m.work_mem_kb * 1024:
                time *= m.spill_penalty
            return time

        if node.node_type == "Materialize":
            rows = node.actual_rows or 0.0
            build = rows * m.cpu_tuple_us * 0.5
            rescans = max(loops - 1.0, 0.0) * rows * m.cpu_tuple_us * 0.15
            return build + rescans

        if node.node_type == "Aggregate":
            in_rows = node.children[0].actual_rows or 0.0
            return in_rows * m.cpu_operator_us

        if node.node_type == "Group Aggregate":
            # Hash the grouping key per input row, emit one row per group.
            in_rows = node.children[0].actual_rows or 0.0
            return (
                in_rows * (m.cpu_operator_us + m.hash_probe_us)
                + rows_out * m.emit_us
            )

        if node.node_type == "Gather":
            return rows_out * m.cpu_tuple_us * 2.0 + 30.0  # worker startup

        if node.node_type in ("Limit", "Result"):
            return m.cpu_tuple_us

        raise ValueError(f"no timing model for node type {node.node_type}")

    def _annotate_time(self, node: PlanNode, loops: float) -> float:
        """Fill ``actual_time_ms`` bottom-up; returns cumulative time (ms)."""
        if node.node_type == "Nested Loop":
            # Children row counts were annotated already; the inner side
            # runs once per outer row (0 outer rows -> never executed).
            outer_rows = node.children[0].actual_rows or 0.0
            child_abs_loops = [loops, loops * outer_rows]
        elif node.node_type in ("Materialize", "Hash"):
            # Builds happen once and are cached across rescans.
            child_abs_loops = [min(loops, 1.0)]
        else:
            child_abs_loops = [loops] * len(node.children)
        children_ms = sum(
            self._annotate_time(child, l)
            for child, l in zip(node.children, child_abs_loops)
        )
        if node.node_type == "Gather":
            # Two workers split the subtree's work; keep the coordination tax.
            children_ms *= 0.55
        self_ms = self._self_time_us(node, loops) / 1000.0 * self._noise()
        node.actual_time_ms = children_ms + self_ms
        return node.actual_time_ms

    # ------------------------------------------------------------------ #
    def execute(self, plan: PlanNode, query: Query) -> PlanNode:
        """Annotate ``plan`` in place with actual rows and latencies.

        Returns the same plan; the root's ``actual_time_ms`` includes the
        machine's fixed per-query startup cost.
        """
        self._annotate_rows(plan, query)
        self._annotate_time(plan, 1.0)
        plan.actual_time_ms += self.machine.startup_ms * self._noise()
        return plan
