"""Hardware machine profiles for the simulated executor.

The paper runs every query on two physical machines: M1 (Xeon E5-2650 v4 +
GTX 1080 Ti) for workloads 1 and 3, and M2 (Core i5-8500) for workload 2
("across-more").  What across-more actually requires is that the *latency
function* of M2 differs systematically from M1's — different CPU/I-O cost
ratios, different memory headroom (spill points), different constant
overheads — so that a model trained on M1 labels is mis-calibrated on M2
until fine-tuned.  These profiles encode exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineProfile:
    """Latency constants (microseconds unless noted) for one machine."""

    name: str
    cpu_tuple_us: float        # per tuple processed
    cpu_operator_us: float     # per predicate/comparison evaluated
    seq_page_us: float         # sequential 8 KiB page read
    random_page_us: float      # random 8 KiB page read
    hash_build_us: float       # per tuple inserted into a hash table
    hash_probe_us: float       # per probe
    sort_cmp_us: float         # per comparison during sort
    emit_us: float             # per output tuple
    work_mem_kb: float         # spill threshold for hashes/sorts
    spill_penalty: float       # multiplier once an operator spills
    startup_ms: float          # fixed per-query overhead (executor startup)
    noise_sigma: float         # lognormal noise on each node's self time

    def __post_init__(self) -> None:
        if self.spill_penalty < 1.0:
            raise ValueError("spill penalty must be >= 1")
        if self.noise_sigma < 0:
            raise ValueError("noise sigma must be non-negative")


# M1: server-class Xeon — slower per-core clock, ample memory, fast storage.
M1 = MachineProfile(
    name="M1",
    cpu_tuple_us=0.08,
    cpu_operator_us=0.02,
    seq_page_us=6.0,
    random_page_us=28.0,
    hash_build_us=0.14,
    hash_probe_us=0.09,
    sort_cmp_us=0.035,
    emit_us=0.05,
    work_mem_kb=4096.0,
    spill_penalty=2.6,
    startup_ms=0.35,
    noise_sigma=0.05,
)

# M2: desktop i5 — ~1.7x faster per-core CPU, slower storage, less memory
# headroom (earlier spills), higher relative startup cost.
M2 = MachineProfile(
    name="M2",
    cpu_tuple_us=0.05,
    cpu_operator_us=0.012,
    seq_page_us=9.5,
    random_page_us=55.0,
    hash_build_us=0.08,
    hash_probe_us=0.055,
    sort_cmp_us=0.02,
    emit_us=0.03,
    work_mem_kb=1024.0,
    spill_penalty=3.4,
    startup_ms=0.55,
    noise_sigma=0.05,
)


#: The one name→profile mapping; the CLI, the bench cache, and the
#: experiment matrix's ``machine`` axis all resolve through here.
MACHINES = {"M1": M1, "M2": M2}


def resolve_machine(name) -> MachineProfile:
    """Resolve a machine name (case-insensitive) to its profile.

    Accepts a :class:`MachineProfile` unchanged, so callers can thread
    either representation.  Raises ``ValueError`` naming the valid
    machines on a miss.
    """
    if isinstance(name, MachineProfile):
        return name
    key = str(name).strip().upper()
    try:
        return MACHINES[key]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; valid machines: "
            f"{', '.join(sorted(MACHINES))}"
        ) from None


def other_machine(machine) -> MachineProfile:
    """The *other* physical machine (the paper's across-more pairing)."""
    return M2 if resolve_machine(machine) is M1 else M1
