"""Exact ("actual") cardinalities computed on the generated data.

The workload generator only produces tree-shaped join graphs (each table is
joined in along one FK edge), so exact join cardinalities can be computed
without materializing intermediate results: repeatedly fold leaf tables into
their neighbor by aggregating per-key row weights (a weighted semijoin
message pass).  This is exact for acyclic equi-join queries and runs in
O(rows log rows) per join subtree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog.datagen import NULL_SENTINEL, Database
from repro.sql.query import Join, Predicate, Query


def predicate_mask(values: np.ndarray, predicate: Predicate) -> np.ndarray:
    """Boolean mask of rows satisfying ``predicate`` (NULLs never match)."""
    if values.dtype == np.int64:
        non_null = values != NULL_SENTINEL
    else:
        non_null = np.isfinite(values)
    op, value = predicate.op, predicate.value
    if op == "in":
        matched = np.isin(values, np.asarray(predicate.values))
    elif op == "=":
        matched = values == value
    elif op == "!=":
        matched = values != value
    elif op == "<":
        matched = values < value
    elif op == "<=":
        matched = values <= value
    elif op == ">":
        matched = values > value
    else:  # ">="
        matched = values >= value
    return matched & non_null


class TrueCardinalityCalculator:
    """Computes exact scan and join cardinalities for one database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self._mask_cache: Dict[Tuple, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def scan_mask(
        self, table: str, predicates: Sequence[Predicate]
    ) -> np.ndarray:
        """Row mask after applying a conjunction of predicates to a table."""
        key = (table, tuple(sorted(
            (p.column, p.op, p.value, p.values or ()) for p in predicates
        )))
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        num_rows = self.database.table_rows(table)
        mask = np.ones(num_rows, dtype=bool)
        for predicate in predicates:
            values = self.database.column_array(table, predicate.column)
            mask &= predicate_mask(values, predicate)
        self._mask_cache[key] = mask
        return mask

    def scan_rows(self, table: str, predicates: Sequence[Predicate]) -> int:
        return int(self.scan_mask(table, predicates).sum())

    # ------------------------------------------------------------------ #
    def subset_rows(
        self,
        query: Query,
        tables: Sequence[str],
        ignore_predicates_on: Optional[str] = None,
    ) -> float:
        """Exact cardinality of joining a connected subset of query tables.

        Folds leaves of the join subtree into their neighbors, carrying a
        per-row weight equal to the number of already-folded join partners.

        ``ignore_predicates_on`` drops the filters of one table — used to
        count the rows an index lookup *fetches* before residual filters.
        """

        weights, root = self._fold_weights(
            query, tables, ignore_predicates_on=ignore_predicates_on
        )
        return float(weights[root].sum())

    def _fold_weights(
        self,
        query: Query,
        tables: Sequence[str],
        root: Optional[str] = None,
        ignore_predicates_on: Optional[str] = None,
    ):
        """Run the semijoin fold; returns (weights dict, surviving table).

        When ``root`` is given, folding eliminates every other table so the
        surviving per-row weights live on ``root``'s rows.
        """

        def predicates_on(table: str):
            if table == ignore_predicates_on:
                return []
            return query.predicates_on(table)

        table_set = set(tables)
        if root is not None and root not in table_set:
            raise ValueError(f"fold root {root!r} not in subset")
        if len(table_set) == 1:
            table = next(iter(table_set))
            mask = self.scan_mask(table, predicates_on(table))
            return {table: mask.astype(np.float64)}, table

        joins = [
            j for j in query.joins
            if j.left_table in table_set and j.right_table in table_set
        ]
        if len(joins) != len(table_set) - 1:
            raise ValueError(
                f"join subtree over {sorted(table_set)} is not a tree "
                f"({len(joins)} joins)"
            )

        # Per-table surviving row weights (0 for filtered-out rows).
        weights: Dict[str, np.ndarray] = {}
        for table in table_set:
            mask = self.scan_mask(table, predicates_on(table))
            weights[table] = mask.astype(np.float64)

        adjacency: Dict[str, List[Join]] = {t: [] for t in table_set}
        for join in joins:
            adjacency[join.left_table].append(join)
            adjacency[join.right_table].append(join)

        remaining_joins = list(joins)
        remaining_tables = set(table_set)
        while remaining_joins:
            # Find a leaf: a table participating in exactly one remaining join.
            degree: Dict[str, int] = {t: 0 for t in remaining_tables}
            for join in remaining_joins:
                degree[join.left_table] += 1
                degree[join.right_table] += 1
            # Sorted so the elimination order — and therefore the float
            # summation order — is identical in every process; a set walk
            # here varies with hash randomization and perturbs labels in
            # the last ulp.
            leaf = next(
                t for t in sorted(remaining_tables)
                if degree[t] == 1 and t != root
            )
            join = next(
                j for j in remaining_joins
                if leaf in (j.left_table, j.right_table)
            )
            if join.left_table == leaf:
                leaf_column, other, other_column = (
                    join.left_column, join.right_table, join.right_column
                )
            else:
                leaf_column, other, other_column = (
                    join.right_column, join.left_table, join.left_column
                )

            leaf_keys = self.database.column_array(leaf, leaf_column)
            leaf_weights = weights[leaf]
            live = leaf_weights > 0
            if leaf_keys.dtype == np.int64:
                live &= leaf_keys != NULL_SENTINEL
            else:
                live &= np.isfinite(leaf_keys)
            live_keys = leaf_keys[live]
            live_weights = leaf_weights[live]

            other_keys = self.database.column_array(other, other_column)
            if live_keys.size == 0:
                weights[other] = np.zeros_like(weights[other])
            else:
                unique_keys, inverse = np.unique(live_keys, return_inverse=True)
                key_weight = np.bincount(
                    inverse, weights=live_weights, minlength=unique_keys.size
                )
                position = np.searchsorted(unique_keys, other_keys)
                position = np.clip(position, 0, unique_keys.size - 1)
                matches = unique_keys[position] == other_keys
                factor = np.where(matches, key_weight[position], 0.0)
                weights[other] = weights[other] * factor

            remaining_tables.discard(leaf)
            remaining_joins.remove(join)

        survivor = next(iter(remaining_tables))
        return weights, survivor

    def group_count(
        self,
        query: Query,
        tables: Sequence[str],
        group_table: str,
        group_column: str,
    ) -> float:
        """Exact number of GROUP BY groups over the joined subset.

        Folds every table into ``group_table``; the groups are the distinct
        non-null values of ``group_column`` among rows that still have
        positive weight (i.e. participate in the join result).
        """
        weights, survivor = self._fold_weights(
            query, tables, root=group_table
        )
        assert survivor == group_table
        values = self.database.column_array(group_table, group_column)
        live = weights[group_table] > 0
        if values.dtype == np.int64:
            live &= values != NULL_SENTINEL
        else:
            live &= np.isfinite(values)
        return float(np.unique(values[live]).size)

    def query_rows(self, query: Query) -> float:
        """Exact result cardinality of the full query (before aggregation)."""
        return self.subset_rows(query, query.tables)
