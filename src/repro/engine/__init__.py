"""A PostgreSQL-like DBMS engine substrate.

Provides everything DACE consumes from a real DBMS:

- a cost-based query planner with PG-style cost constants and operators
  (:mod:`repro.engine.planner`, :mod:`repro.engine.cost_model`),
- the optimizer's *approximate* cardinality estimator whose systematic
  errors form the EDQO (:mod:`repro.engine.cardinality`),
- exact true cardinalities computed on the generated data
  (:mod:`repro.engine.true_card`),
- a simulated executor that turns true cardinalities plus a machine profile
  into per-node actual latencies, i.e. EXPLAIN ANALYZE labels
  (:mod:`repro.engine.executor`, :mod:`repro.engine.machines`).
"""

from repro.engine.plan import NODE_TYPES, PlanNode, explain
from repro.engine.explain_json import explain_json, plan_to_json_dict
from repro.engine.diagnostics import (
    NodeDiagnostic,
    diagnose_plan,
    error_by_node_type,
    worst_nodes,
)
from repro.engine.cost_model import CostModel, PostgresCostConstants
from repro.engine.cardinality import CardinalityEstimator
from repro.engine.true_card import TrueCardinalityCalculator
from repro.engine.planner import Planner
from repro.engine.machines import M1, M2, MachineProfile
from repro.engine.executor import SimulatedExecutor
from repro.engine.session import EngineSession

__all__ = [
    "NODE_TYPES",
    "PlanNode",
    "explain",
    "explain_json",
    "plan_to_json_dict",
    "NodeDiagnostic",
    "diagnose_plan",
    "worst_nodes",
    "error_by_node_type",
    "PostgresCostConstants",
    "CostModel",
    "CardinalityEstimator",
    "TrueCardinalityCalculator",
    "Planner",
    "MachineProfile",
    "M1",
    "M2",
    "SimulatedExecutor",
    "EngineSession",
]
