"""Cost-based query planner (System-R style, PG-flavored).

Produces physical plan trees for SPJ(+aggregate) queries:

- **Access paths** per table: Seq Scan, Index Scan, Bitmap Heap Scan (over a
  Bitmap Index Scan), or Index Only Scan; every table is indexed on its pk,
  its fk columns, and its first attribute column (a fixed, documented rule).
- **Join ordering** by dynamic programming over connected subsets (bushy),
  falling back to a greedy heuristic above ``MAX_DP_TABLES`` tables.
- **Join methods**: Hash Join (with an explicit Hash build node), Nested
  Loop (with an Index Scan inner when the join key is indexed, otherwise a
  Materialize inner), Merge Join (with Sort children).
- Big sequential scans are parallelized under a **Gather** node, and
  aggregate queries get an **Aggregate** root.

Costing uses estimated cardinalities from
:class:`~repro.engine.cardinality.CardinalityEstimator`; all the usual
misestimation pathologies (independence, uniform fan-out) flow through to
the plan's per-node ``est_rows``/``est_cost`` — the features DACE consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.catalog.schema import Schema
from repro.engine.cardinality import CardinalityEstimator
from repro.engine.cost_model import CostModel
from repro.engine.plan import PlanNode
from repro.sql.query import Join, Predicate, Query

MAX_DP_TABLES = 9
GATHER_MIN_PAGES = 2000  # parallel seq scan threshold (pages)


@dataclass
class _Path:
    """A candidate subplan for a set of tables."""

    node: PlanNode
    rows: float
    cost: float  # cumulative, == node.est_cost


class Planner:
    """Plans queries for one database snapshot."""

    def __init__(
        self,
        schema: Schema,
        estimator: CardinalityEstimator,
        cost_model: Optional[CostModel] = None,
        extra_indexes: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        """``extra_indexes`` maps table -> additional indexed columns;
        used for what-if planning by the index advisor."""
        self.schema = schema
        self.estimator = estimator
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.extra_indexes: Dict[str, set] = {
            table: set(columns)
            for table, columns in (extra_indexes or {}).items()
        }

    # ------------------------------------------------------------------ #
    # Index inventory
    # ------------------------------------------------------------------ #
    def indexed_columns(self, table: str) -> List[str]:
        """Indexes: every pk/fk column, the first attribute column (a
        fixed documented rule), plus any what-if extras."""
        schema_table = self.schema.table(table)
        indexed = []
        first_attribute: Optional[str] = None
        for column in schema_table.columns:
            if column.kind in ("pk", "fk"):
                indexed.append(column.name)
            elif first_attribute is None and column.kind in ("int", "float"):
                first_attribute = column.name
        if first_attribute is not None:
            indexed.append(first_attribute)
        for extra in sorted(self.extra_indexes.get(table, ())):
            if extra not in indexed:
                schema_table.column(extra)  # validate existence
                indexed.append(extra)
        return indexed

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def _scan_paths(self, query: Query, table: str) -> List[_Path]:
        cm = self.cost_model
        schema_table = self.schema.table(table)
        predicates = query.predicates_on(table)
        out_rows = self.estimator.scan_rows(table, predicates)
        table_rows = float(schema_table.num_rows)
        pages = float(schema_table.num_pages)
        width = schema_table.row_width_bytes
        indexed = set(self.indexed_columns(table))

        paths: List[_Path] = []

        seq_cost = cm.seq_scan(table_rows, pages, len(predicates), out_rows)
        seq_node = PlanNode(
            node_type="Seq Scan",
            est_rows=out_rows,
            est_cost=seq_cost,
            width=width,
            table=table,
            predicates=list(predicates),
        )
        if pages >= GATHER_MIN_PAGES:
            # Parallel scan: 2 workers halve the scan, Gather adds transfer.
            gather_cost = seq_cost / 2.0 + out_rows * cm.constants.cpu_tuple_cost
            parallel_child = PlanNode(
                node_type="Seq Scan",
                est_rows=out_rows,
                est_cost=seq_cost / 2.0,
                width=width,
                table=table,
                predicates=list(predicates),
            )
            gather = PlanNode(
                node_type="Gather",
                est_rows=out_rows,
                est_cost=gather_cost,
                width=width,
                children=[parallel_child],
            )
            paths.append(_Path(gather, out_rows, gather_cost))
        paths.append(_Path(seq_node, out_rows, seq_cost))

        # Index paths driven by the most selective indexed eq/range predicate.
        indexed_predicates = [p for p in predicates if p.column in indexed]
        if indexed_predicates:
            driver = min(
                indexed_predicates,
                key=self.estimator.predicate_selectivity,
            )
            matched = table_rows * self.estimator.predicate_selectivity(driver)
            residual = [p for p in predicates if p is not driver]

            index_cost = cm.index_scan(matched, pages, table_rows, len(residual))
            paths.append(_Path(
                PlanNode(
                    node_type="Index Scan",
                    est_rows=out_rows,
                    est_cost=index_cost,
                    width=width,
                    table=table,
                    predicates=list(predicates),
                    index_column=driver.column,
                ),
                out_rows,
                index_cost,
            ))

            bitmap_index_cost = cm.bitmap_index_scan(matched, table_rows)
            bitmap_index = PlanNode(
                node_type="Bitmap Index Scan",
                est_rows=matched,
                est_cost=bitmap_index_cost,
                width=0,
                table=table,
                index_column=driver.column,
                predicates=[driver],
            )
            bitmap_heap_cost = bitmap_index_cost + cm.bitmap_heap_scan(
                matched, pages, len(residual)
            )
            paths.append(_Path(
                PlanNode(
                    node_type="Bitmap Heap Scan",
                    est_rows=out_rows,
                    est_cost=bitmap_heap_cost,
                    width=width,
                    table=table,
                    predicates=list(predicates),
                    children=[bitmap_index],
                ),
                out_rows,
                bitmap_heap_cost,
            ))
        return paths

    def _best_scan(self, query: Query, table: str) -> _Path:
        return min(self._scan_paths(query, table), key=lambda p: p.cost)

    def _index_lookup_path(
        self, query: Query, table: str, join_column: str
    ) -> Optional[_Path]:
        """Inner side of a nested loop: index scan on the join key."""
        if join_column not in self.indexed_columns(table):
            return None
        cm = self.cost_model
        schema_table = self.schema.table(table)
        predicates = query.predicates_on(table)
        table_rows = float(schema_table.num_rows)
        pages = float(schema_table.num_pages)
        # Average matches per lookup: fan-out of the join key.
        stats = self.estimator.stats.get(table)
        if stats is not None and join_column in stats.columns:
            distinct = max(1.0, stats.columns[join_column].n_distinct)
        else:
            distinct = table_rows
        matches = max(1.0, table_rows / distinct)
        selectivity = self.estimator.scan_selectivity(predicates)
        out_rows = max(matches * selectivity, 1e-6)
        cost = cm.index_scan(matches, pages, table_rows, len(predicates))
        node = PlanNode(
            node_type="Index Scan",
            est_rows=max(out_rows, 1.0),
            est_cost=cost,
            width=schema_table.row_width_bytes,
            table=table,
            predicates=list(predicates),
            index_column=join_column,
        )
        return _Path(node, out_rows, cost)

    # ------------------------------------------------------------------ #
    # Join methods
    # ------------------------------------------------------------------ #
    def _join_paths(
        self,
        query: Query,
        outer: _Path,
        inner: _Path,
        joins: Sequence[Join],
        out_rows: float,
    ) -> List[_Path]:
        cm = self.cost_model
        paths: List[_Path] = []
        join = joins[0]

        # Hash join: build the smaller side.
        build, probe = (inner, outer)
        if build.rows > probe.rows:
            build, probe = probe, build
        hash_self = cm.hash_build(build.rows, build.node.width)
        spill = build.rows * build.node.width > cm.constants.work_mem_kb * 1024
        if spill:
            hash_self *= 3.0
        hash_node = PlanNode(
            node_type="Hash",
            est_rows=build.rows,
            est_cost=build.cost + hash_self,
            width=build.node.width,
            children=[build.node],
        )
        hj_cost = (
            probe.cost
            + hash_node.est_cost
            + cm.hash_join_probe(probe.rows, out_rows)
        )
        paths.append(_Path(
            PlanNode(
                node_type="Hash Join",
                est_rows=out_rows,
                est_cost=hj_cost,
                width=probe.node.width + build.node.width,
                children=[probe.node, hash_node],
                join=join,
            ),
            out_rows,
            hj_cost,
        ))

        # Nested loop with an index inner (only if inner is a single table).
        inner_tables = inner.node.tables_below()
        if len(inner_tables) == 1:
            inner_table = inner_tables[0]
            join_column = (
                join.left_column if join.left_table == inner_table
                else join.right_column
            )
            lookup = self._index_lookup_path(query, inner_table, join_column)
            if lookup is not None:
                nl_cost = outer.cost + cm.nested_loop(
                    outer.rows, lookup.cost, out_rows
                )
                paths.append(_Path(
                    PlanNode(
                        node_type="Nested Loop",
                        est_rows=out_rows,
                        est_cost=nl_cost,
                        width=outer.node.width + lookup.node.width,
                        children=[outer.node.clone(), lookup.node],
                        join=join,
                    ),
                    out_rows,
                    nl_cost,
                ))

        # Nested loop with a materialized inner.
        materialize_self = cm.materialize(inner.rows)
        materialize = PlanNode(
            node_type="Materialize",
            est_rows=inner.rows,
            est_cost=inner.cost + materialize_self,
            width=inner.node.width,
            children=[inner.node.clone()],
        )
        rescan = cm.materialize_rescan(inner.rows)
        nl_mat_cost = outer.cost + materialize.est_cost + cm.nested_loop(
            outer.rows, rescan, out_rows
        )
        paths.append(_Path(
            PlanNode(
                node_type="Nested Loop",
                est_rows=out_rows,
                est_cost=nl_mat_cost,
                width=outer.node.width + inner.node.width,
                children=[outer.node.clone(), materialize],
                join=join,
            ),
            out_rows,
            nl_mat_cost,
        ))

        # Merge join with sorted inputs.
        sort_outer_self = cm.sort(outer.rows, outer.node.width)
        sort_inner_self = cm.sort(inner.rows, inner.node.width)
        sort_outer = PlanNode(
            node_type="Sort", est_rows=outer.rows,
            est_cost=outer.cost + sort_outer_self,
            width=outer.node.width, children=[outer.node.clone()],
        )
        sort_inner = PlanNode(
            node_type="Sort", est_rows=inner.rows,
            est_cost=inner.cost + sort_inner_self,
            width=inner.node.width, children=[inner.node.clone()],
        )
        mj_cost = (
            sort_outer.est_cost
            + sort_inner.est_cost
            + cm.merge_join(outer.rows, inner.rows, out_rows)
        )
        paths.append(_Path(
            PlanNode(
                node_type="Merge Join",
                est_rows=out_rows,
                est_cost=mj_cost,
                width=outer.node.width + inner.node.width,
                children=[sort_outer, sort_inner],
                join=join,
            ),
            out_rows,
            mj_cost,
        ))
        return paths

    # ------------------------------------------------------------------ #
    # Join ordering
    # ------------------------------------------------------------------ #
    def _plan_joins_dp(self, query: Query) -> _Path:
        tables = query.tables
        best: Dict[FrozenSet[str], _Path] = {}
        for table in tables:
            best[frozenset([table])] = self._best_scan(query, table)

        for size in range(2, len(tables) + 1):
            for combo in itertools.combinations(tables, size):
                subset = frozenset(combo)
                candidates: List[_Path] = []
                # All ways to split into two connected, joined halves.
                members = sorted(subset)
                for split_size in range(1, size // 2 + 1):
                    for left_combo in itertools.combinations(members, split_size):
                        left = frozenset(left_combo)
                        right = subset - left
                        if left not in best or right not in best:
                            continue
                        joins = query.joins_between(left, right)
                        if not joins:
                            continue
                        out_rows = self.estimator.estimate_subset_rows(
                            query, list(subset)
                        )
                        candidates.extend(self._join_paths(
                            query, best[left], best[right], joins, out_rows
                        ))
                        candidates.extend(self._join_paths(
                            query, best[right], best[left], joins, out_rows
                        ))
                if candidates:
                    best[subset] = min(candidates, key=lambda p: p.cost)
        full = frozenset(tables)
        if full not in best:
            raise ValueError("query join graph is disconnected")
        return best[full]

    def _plan_joins_greedy(self, query: Query) -> _Path:
        """Greedy pairwise merging for very large table counts."""
        parts: Dict[FrozenSet[str], _Path] = {
            frozenset([t]): self._best_scan(query, t) for t in query.tables
        }
        while len(parts) > 1:
            best_pair = None
            best_path = None
            for left, right in itertools.combinations(parts, 2):
                joins = query.joins_between(left, right)
                if not joins:
                    continue
                out_rows = self.estimator.estimate_subset_rows(
                    query, list(left | right)
                )
                for path in self._join_paths(
                    query, parts[left], parts[right], joins, out_rows
                ):
                    if best_path is None or path.cost < best_path.cost:
                        best_path = path
                        best_pair = (left, right)
            if best_pair is None:
                raise ValueError("query join graph is disconnected")
            left, right = best_pair
            del parts[left]
            del parts[right]
            parts[left | right] = best_path
        return next(iter(parts.values()))

    # ------------------------------------------------------------------ #
    # Multi-candidate enumeration (beam DP) — used for learned plan
    # selection, where a model re-ranks the optimizer's top candidates.
    # ------------------------------------------------------------------ #
    def _candidate_paths(self, query: Query, beam: int) -> List[_Path]:
        """Beam-width DP: keep up to ``beam`` cheapest paths per subset."""
        best: Dict[FrozenSet[str], List[_Path]] = {}
        for table in query.tables:
            paths = sorted(self._scan_paths(query, table),
                           key=lambda p: p.cost)
            best[frozenset([table])] = paths[:beam]

        for size in range(2, len(query.tables) + 1):
            for combo in itertools.combinations(query.tables, size):
                subset = frozenset(combo)
                candidates: List[_Path] = []
                members = sorted(subset)
                for split_size in range(1, size // 2 + 1):
                    for left_combo in itertools.combinations(
                        members, split_size
                    ):
                        left = frozenset(left_combo)
                        right = subset - left
                        if left not in best or right not in best:
                            continue
                        joins = query.joins_between(left, right)
                        if not joins:
                            continue
                        out_rows = self.estimator.estimate_subset_rows(
                            query, list(subset)
                        )
                        for outer in best[left]:
                            for inner in best[right]:
                                candidates.extend(self._join_paths(
                                    query, outer, inner, joins, out_rows
                                ))
                                candidates.extend(self._join_paths(
                                    query, inner, outer, joins, out_rows
                                ))
                if candidates:
                    candidates.sort(key=lambda p: p.cost)
                    best[subset] = candidates[:beam]
        full = frozenset(query.tables)
        if full not in best:
            raise ValueError("query join graph is disconnected")
        return best[full]

    def _finalize(self, query: Query, path: _Path) -> PlanNode:
        root = path.node
        if query.group_by is not None:
            # Hash-style grouped aggregation (PG's HashAggregate); the
            # grouping key adds one hashed operator per input row.
            groups = self.estimator.group_count_estimate(query, path.rows)
            agg_cost = (
                path.cost
                + self.cost_model.aggregate(path.rows, num_aggs=2)
                + groups * self.cost_model.constants.cpu_tuple_cost
            )
            root = PlanNode(
                node_type="Group Aggregate",
                est_rows=groups,
                est_cost=agg_cost,
                width=16,
                children=[root],
            )
        elif query.aggregate:
            agg_cost = path.cost + self.cost_model.aggregate(path.rows)
            root = PlanNode(
                node_type="Aggregate",
                est_rows=1.0,
                est_cost=agg_cost,
                width=8,
                children=[root],
            )
        return root

    def candidate_plans(self, query: Query, k: int = 8) -> List[PlanNode]:
        """Up to ``k`` complete candidate plans, cheapest-estimate first.

        The first candidate is the plan :meth:`plan` would pick.  Only
        available for DP-sized queries (≤ ``MAX_DP_TABLES`` tables).
        """
        query.validate_against(self.schema)
        if len(query.tables) == 1:
            paths = sorted(self._scan_paths(query, query.tables[0]),
                           key=lambda p: p.cost)[:k]
        elif len(query.tables) <= MAX_DP_TABLES:
            paths = self._candidate_paths(query, beam=k)[:k]
        else:
            paths = [self._plan_joins_greedy(query)]
        return [self._finalize(query, path) for path in paths]

    # ------------------------------------------------------------------ #
    def plan(self, query: Query) -> PlanNode:
        """Produce the cheapest physical plan for ``query``."""
        query.validate_against(self.schema)
        if len(query.tables) == 1:
            path = self._best_scan(query, query.tables[0])
        elif len(query.tables) <= MAX_DP_TABLES:
            path = self._plan_joins_dp(query)
        else:
            path = self._plan_joins_greedy(query)
        return self._finalize(query, path)
