"""EngineSession: the "DBMS connection" tying all engine pieces together.

A session owns one database, its ANALYZE statistics, a planner, and a
simulated executor on one machine profile.  Its API mirrors what the paper
collects from PostgreSQL:

- :meth:`explain`  — plan only (estimates).
- :meth:`explain_analyze` — plan + simulated execution (estimates + labels).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.catalog.datagen import Database
from repro.catalog.stats import TableStats, collect_table_stats
from repro.engine.cardinality import CardinalityEstimator
from repro.engine.cost_model import CostModel, PostgresCostConstants
from repro.engine.executor import SimulatedExecutor
from repro.engine.machines import M1, MachineProfile
from repro.engine.plan import PlanNode
from repro.engine.planner import Planner
from repro.sql.query import Query


class EngineSession:
    """One database + machine, ready to plan and execute queries."""

    def __init__(
        self,
        database: Database,
        machine: MachineProfile = M1,
        seed: int = 0,
        stats: Optional[Dict[str, TableStats]] = None,
        constants: Optional[PostgresCostConstants] = None,
    ) -> None:
        self.database = database
        self.machine = machine
        self.stats = stats if stats is not None else collect_table_stats(
            database, seed=seed
        )
        self.estimator = CardinalityEstimator(self.stats)
        cost_model = CostModel(constants) if constants else CostModel()
        self.planner = Planner(database.schema, self.estimator, cost_model)
        self.executor = SimulatedExecutor(database, machine, seed=seed)

    def explain(self, query: Query) -> PlanNode:
        """Plan a query (optimizer estimates only)."""
        return self.planner.plan(query)

    def explain_analyze(self, query: Query) -> PlanNode:
        """Plan and simulate execution; per-node labels are filled in."""
        plan = self.planner.plan(query)
        return self.executor.execute(plan, query)

    def latency_ms(self, query: Query) -> float:
        """Convenience: total simulated latency of a query."""
        return float(self.explain_analyze(query).actual_time_ms)
