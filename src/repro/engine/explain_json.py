"""EXPLAIN (FORMAT JSON) — machine-readable plan output.

Mirrors PostgreSQL's JSON explain format closely enough that tooling
written against PG's key names ("Node Type", "Plan Rows", "Total Cost",
"Actual Total Time", "Plans") works on our plans.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.engine.plan import PlanNode


def plan_to_json_dict(node: PlanNode) -> Dict[str, Any]:
    """One plan node as a PG-style JSON dict (recursive)."""
    out: Dict[str, Any] = {
        "Node Type": node.node_type,
        "Startup Cost": round(node.est_startup_cost, 2),
        "Total Cost": round(node.est_cost, 2),
        "Plan Rows": round(node.est_rows),
        "Plan Width": node.width,
    }
    if node.table is not None:
        out["Relation Name"] = node.table
    if node.index_column is not None:
        out["Index Name"] = f"{node.index_column}_idx"
    if node.join is not None:
        out["Join Cond"] = str(node.join)
    if node.predicates:
        out["Filter"] = " AND ".join(str(p) for p in node.predicates)
    if node.actual_time_ms is not None:
        out["Actual Total Time"] = round(node.actual_time_ms, 3)
        out["Actual Rows"] = round(node.actual_rows)
    if node.children:
        out["Plans"] = [plan_to_json_dict(child) for child in node.children]
    return out


def explain_json(plan: PlanNode, indent: int = 2) -> str:
    """The full EXPLAIN (FORMAT JSON) document."""
    return json.dumps([{"Plan": plan_to_json_dict(plan)}], indent=indent)
