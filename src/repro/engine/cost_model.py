"""PostgreSQL-style abstract cost model.

The constants and formulas follow PostgreSQL's ``costsize.c`` in simplified
form.  Costs are in PG's abstract units (sequential page fetch = 1.0), *not*
milliseconds — exactly the unit mismatch the paper corrects for with a
linear model when reporting the "PostgreSQL" baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PostgresCostConstants:
    """The planner cost GUCs, at PostgreSQL defaults."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    work_mem_kb: float = 4096.0  # PG default 4MB
    page_size_bytes: int = 8192


DEFAULT_CONSTANTS = PostgresCostConstants()


class CostModel:
    """Per-operator cost formulas over *estimated* cardinalities.

    Every method returns the operator's **self cost** (excluding children);
    the planner accumulates totals up the tree the way PG's cumulative
    ``total_cost`` does.
    """

    def __init__(self, constants: PostgresCostConstants = DEFAULT_CONSTANTS):
        self.constants = constants

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    def seq_scan(self, table_rows: float, table_pages: float,
                 num_predicates: int, out_rows: float) -> float:
        c = self.constants
        run = table_pages * c.seq_page_cost
        run += table_rows * c.cpu_tuple_cost
        run += table_rows * num_predicates * c.cpu_operator_cost
        return run

    def index_scan(self, matched_rows: float, table_pages: float,
                   table_rows: float, num_predicates: int) -> float:
        """B-tree lookup + heap fetches; random I/O dominated."""
        c = self.constants
        matched_rows = max(matched_rows, 1.0)
        tree_height = max(1.0, math.log(max(table_rows, 2.0), 100.0))
        run = tree_height * c.random_page_cost
        # Heap pages fetched: at worst one random page per matched row,
        # discounted for physical clustering.
        pages_fetched = min(table_pages, matched_rows * 0.5 + 1.0)
        run += pages_fetched * c.random_page_cost
        run += matched_rows * (c.cpu_index_tuple_cost + c.cpu_tuple_cost)
        run += matched_rows * num_predicates * c.cpu_operator_cost
        return run

    def bitmap_heap_scan(self, matched_rows: float, table_pages: float,
                         num_predicates: int) -> float:
        c = self.constants
        pages = min(table_pages, matched_rows * 0.3 + 1.0)
        run = pages * (c.seq_page_cost + c.random_page_cost) / 2.0
        run += matched_rows * c.cpu_tuple_cost
        run += matched_rows * num_predicates * c.cpu_operator_cost
        return run

    def bitmap_index_scan(self, matched_rows: float, table_rows: float) -> float:
        c = self.constants
        tree_height = max(1.0, math.log(max(table_rows, 2.0), 100.0))
        return tree_height * c.random_page_cost + matched_rows * c.cpu_index_tuple_cost

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def hash_build(self, inner_rows: float, inner_width: float) -> float:
        c = self.constants
        return inner_rows * (c.cpu_tuple_cost + c.cpu_operator_cost)

    def hash_join_probe(self, outer_rows: float, out_rows: float) -> float:
        c = self.constants
        run = outer_rows * c.cpu_operator_cost  # hash the probe key
        run += out_rows * c.cpu_tuple_cost  # emit
        return run

    def nested_loop(self, outer_rows: float, inner_rescan_cost: float,
                    out_rows: float) -> float:
        c = self.constants
        run = max(outer_rows, 1.0) * inner_rescan_cost
        run += out_rows * c.cpu_tuple_cost
        return run

    def merge_join(self, outer_rows: float, inner_rows: float,
                   out_rows: float) -> float:
        c = self.constants
        run = (outer_rows + inner_rows) * c.cpu_operator_cost
        run += out_rows * c.cpu_tuple_cost
        return run

    # ------------------------------------------------------------------ #
    # Other operators
    # ------------------------------------------------------------------ #
    def sort(self, in_rows: float, width: float) -> float:
        c = self.constants
        in_rows = max(in_rows, 2.0)
        comparisons = in_rows * math.log2(in_rows)
        run = comparisons * 2.0 * c.cpu_operator_cost
        bytes_needed = in_rows * width
        if bytes_needed > self.constants.work_mem_kb * 1024:
            # External sort: extra I/O passes.
            pages = bytes_needed / c.page_size_bytes
            run += pages * 2.0 * c.seq_page_cost
        return run

    def materialize(self, in_rows: float) -> float:
        return max(in_rows, 1.0) * self.constants.cpu_operator_cost * 0.5

    def materialize_rescan(self, in_rows: float) -> float:
        """Cost of re-reading a materialized relation once."""
        return max(in_rows, 1.0) * self.constants.cpu_operator_cost * 0.25

    def aggregate(self, in_rows: float, num_aggs: int = 1) -> float:
        return max(in_rows, 1.0) * num_aggs * self.constants.cpu_operator_cost

    def limit(self) -> float:
        return self.constants.cpu_tuple_cost
