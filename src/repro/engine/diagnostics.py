"""Plan diagnostics: locate where estimates diverge from reality.

Tooling in the spirit of PostgreSQL plan-analysis utilities: per-node
comparison of estimated vs actual rows and (optionally) a model's per-node
latency predictions vs actual times, plus workload-level aggregation of
which operator types drive estimation error.  Useful both for debugging
the substrate and as library surface for users investigating a
mis-predicted query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.plan import PlanNode
from repro.nn.losses import qerror


@dataclass(frozen=True)
class NodeDiagnostic:
    """Estimate-vs-actual for one plan node."""

    node_type: str
    table: Optional[str]
    est_rows: float
    actual_rows: float
    row_qerror: float
    est_cost: float
    actual_time_ms: float
    predicted_ms: Optional[float]
    time_qerror: Optional[float]


def diagnose_plan(
    plan: PlanNode,
    predicted_ms: Optional[Sequence[float]] = None,
) -> List[NodeDiagnostic]:
    """Per-node diagnostics in DFS order.

    ``predicted_ms`` (optional) supplies a model's per-sub-plan latency
    predictions (e.g. ``dace.predict_subplans(plan)``).
    """
    nodes = list(plan.walk_dfs())
    if predicted_ms is not None and len(predicted_ms) != len(nodes):
        raise ValueError("one prediction per plan node required")
    diagnostics: List[NodeDiagnostic] = []
    for index, node in enumerate(nodes):
        if node.actual_rows is None:
            raise ValueError("plan must be executed (EXPLAIN ANALYZE) first")
        row_q = float(qerror(
            np.array([node.est_rows]), np.array([node.actual_rows])
        )[0])
        predicted = time_q = None
        if predicted_ms is not None:
            predicted = float(predicted_ms[index])
            time_q = float(qerror(
                np.array([predicted]), np.array([node.actual_time_ms])
            )[0])
        diagnostics.append(NodeDiagnostic(
            node_type=node.node_type,
            table=node.table,
            est_rows=node.est_rows,
            actual_rows=node.actual_rows,
            row_qerror=row_q,
            est_cost=node.est_cost,
            actual_time_ms=node.actual_time_ms,
            predicted_ms=predicted,
            time_qerror=time_q,
        ))
    return diagnostics


def worst_nodes(
    plan: PlanNode, top: int = 3
) -> List[NodeDiagnostic]:
    """The nodes with the worst cardinality misestimation."""
    diagnostics = diagnose_plan(plan)
    return sorted(diagnostics, key=lambda d: d.row_qerror, reverse=True)[:top]


def error_by_node_type(plans: Sequence[PlanNode]) -> Dict[str, dict]:
    """Workload-level: cardinality q-error statistics per operator type.

    Returns ``{node_type: {"count", "median_qerror", "max_qerror"}}`` —
    the standard way to find which operators the optimizer misestimates.
    """
    per_type: Dict[str, List[float]] = {}
    for plan in plans:
        for diagnostic in diagnose_plan(plan):
            per_type.setdefault(diagnostic.node_type, []).append(
                diagnostic.row_qerror
            )
    return {
        node_type: {
            "count": len(values),
            "median_qerror": float(np.median(values)),
            "max_qerror": float(np.max(values)),
        }
        for node_type, values in sorted(per_type.items())
    }
