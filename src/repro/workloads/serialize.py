"""Dataset persistence: save/load labelled plan datasets as JSON.

Collecting labels (simulated execution) is the expensive step of every
experiment; persisting a :class:`~repro.workloads.dataset.PlanDataset`
makes workloads reusable across processes, exactly like keeping the
EXPLAIN ANALYZE dumps the paper's pipeline collects from PostgreSQL.

The format is line-delimited JSON: one sample per line, each holding the
query spec and the full plan tree with estimates and labels.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from repro.engine.plan import PlanNode
from repro.sql.query import Join, Predicate, Query
from repro.workloads.dataset import PlanDataset, PlanSample


def _predicate_from_list(item) -> Predicate:
    # Older dumps have 4 fields (no IN support); new ones carry `values`.
    table, column, op, value = item[:4]
    values = tuple(item[4]) if len(item) > 4 and item[4] else None
    return Predicate(table=table, column=column, op=op, value=value,
                     values=values)


def _plan_to_dict(node: PlanNode) -> dict:
    return {
        "node_type": node.node_type,
        "est_rows": node.est_rows,
        "est_cost": node.est_cost,
        "est_startup_cost": node.est_startup_cost,
        "width": node.width,
        "table": node.table,
        "index_column": node.index_column,
        "predicates": [
            [p.table, p.column, p.op, p.value, p.values]
            for p in node.predicates
        ],
        "join": (
            [node.join.left_table, node.join.left_column,
             node.join.right_table, node.join.right_column]
            if node.join else None
        ),
        "actual_rows": node.actual_rows,
        "actual_time_ms": node.actual_time_ms,
        "fetched_rows": node.fetched_rows,
        "children": [_plan_to_dict(child) for child in node.children],
    }


def _plan_from_dict(data: dict) -> PlanNode:
    return PlanNode(
        node_type=data["node_type"],
        est_rows=data["est_rows"],
        est_cost=data["est_cost"],
        est_startup_cost=data["est_startup_cost"],
        width=data["width"],
        table=data["table"],
        index_column=data["index_column"],
        predicates=[_predicate_from_list(p) for p in data["predicates"]],
        join=Join(*data["join"]) if data["join"] else None,
        actual_rows=data["actual_rows"],
        actual_time_ms=data["actual_time_ms"],
        fetched_rows=data["fetched_rows"],
        children=[_plan_from_dict(child) for child in data["children"]],
    )


def _query_to_dict(query: Query) -> dict:
    return {
        "tables": query.tables,
        "joins": [
            [j.left_table, j.left_column, j.right_table, j.right_column]
            for j in query.joins
        ],
        "predicates": [
            [p.table, p.column, p.op, p.value, p.values]
            for p in query.predicates
        ],
        "aggregate": query.aggregate,
        "group_by": list(query.group_by) if query.group_by else None,
    }


def _query_from_dict(data: dict) -> Query:
    group_by = data.get("group_by")
    return Query(
        tables=list(data["tables"]),
        joins=[Join(*j) for j in data["joins"]],
        predicates=[_predicate_from_list(p) for p in data["predicates"]],
        aggregate=data["aggregate"],
        group_by=tuple(group_by) if group_by else None,
    )


def save_dataset(dataset: PlanDataset, path: str) -> None:
    """Write a dataset to ``path`` as line-delimited JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        for sample in dataset:
            handle.write(json.dumps({
                "database": sample.database_name,
                "query": _query_to_dict(sample.query),
                "plan": _plan_to_dict(sample.plan),
            }) + "\n")


def load_dataset(path: str, limit: Optional[int] = None) -> PlanDataset:
    """Read a dataset written by :func:`save_dataset`."""
    samples: List[PlanSample] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            samples.append(PlanSample(
                plan=_plan_from_dict(record["plan"]),
                query=_query_from_dict(record["query"]),
                database_name=record["database"],
            ))
            if limit is not None and len(samples) >= limit:
                break
    return PlanDataset(samples)
