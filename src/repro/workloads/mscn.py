"""Workload 3: the MSCN benchmark against IMDB.

Mirrors the structure of Kipf et al.'s benchmark (and the paper's Tab I):

- **train**: a large uniform workload of 0–2-join queries with numeric
  predicates (the WDM training distribution).
- **synthetic**: held-out queries from the *same* distribution as train.
- **scale**: queries with more joins than anything in train (template drift).
- **job-light**: star joins around ``title`` with hand-shaped predicate
  patterns (the classic 70-query suite; count configurable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.catalog.zoo import load_database
from repro.engine.machines import M1, MachineProfile
from repro.sql.generator import QueryGenerator, WorkloadSpec
from repro.sql.query import Join, Predicate, Query
from repro.workloads.dataset import PlanDataset, collect_workload

_FACT_TABLES = (
    "movie_companies",
    "cast_info",
    "movie_info",
    "movie_keyword",
    "movie_info_idx",
)

_FACT_PRED_COLUMNS = {
    "movie_companies": "company_type_id",
    "cast_info": "role_id",
    "movie_info": "info_type_id",
    "movie_keyword": "keyword_id",
    "movie_info_idx": "info_type_id",
}


@dataclass
class Workload3:
    """The four splits of the MSCN benchmark."""

    train: PlanDataset
    synthetic: PlanDataset
    scale: PlanDataset
    job_light: PlanDataset

    def test_splits(self):
        return {
            "synthetic": self.synthetic,
            "scale": self.scale,
            "job_light": self.job_light,
        }


def _job_light_queries(count: int, seed: int) -> List[Query]:
    """Star joins on title with JOB-light-shaped predicates."""
    rng = np.random.default_rng(seed)
    database = load_database("imdb")
    years = database.column_array("title", "production_year")
    valid_years = years[years > 0]
    queries: List[Query] = []
    for _ in range(count):
        n_facts = int(rng.integers(1, 5))
        facts = list(rng.choice(_FACT_TABLES, size=n_facts, replace=False))
        joins = [Join(fact, "movie_id", "title", "id") for fact in facts]
        predicates: List[Predicate] = []
        if rng.random() < 0.8:
            year = float(rng.choice(valid_years))
            op = str(rng.choice([">", "<", ">=", "<="]))
            predicates.append(Predicate("title", "production_year", op, year))
        if rng.random() < 0.5:
            kind = float(rng.integers(1, 8))
            predicates.append(Predicate("title", "kind_id", "=", kind))
        for fact in facts:
            if rng.random() < 0.6:
                column = _FACT_PRED_COLUMNS[fact]
                values = database.column_array(fact, column)
                anchor = float(values[int(rng.integers(values.size))])
                op = str(rng.choice(["=", ">", "<"]))
                predicates.append(Predicate(fact, column, op, anchor))
        queries.append(Query(
            tables=["title"] + facts, joins=joins, predicates=predicates
        ))
    return queries


def build_workload3(
    train_queries: int = 2000,
    synthetic_queries: int = 500,
    scale_queries: int = 200,
    job_light_queries: int = 70,
    machine: MachineProfile = M1,
    seed: int = 0,
) -> Workload3:
    """Build all four splits (sizes default to a scaled-down benchmark).

    The paper's full sizes are 100000 / 5000 / 500 / 70; pass those for a
    faithful-scale run.
    """
    database = load_database("imdb")

    train_spec = WorkloadSpec(
        max_joins=2, max_predicates=4, min_predicates=1, eq_fraction=0.5
    )
    scale_spec = WorkloadSpec(
        max_joins=4, max_predicates=4, min_predicates=1, eq_fraction=0.5
    )

    train_qs = QueryGenerator(database, train_spec, seed=seed).generate_many(
        train_queries
    )
    synthetic_qs = QueryGenerator(
        database, train_spec, seed=seed + 1
    ).generate_many(synthetic_queries)
    scale_qs = QueryGenerator(
        database, scale_spec, seed=seed + 2
    ).generate_many(scale_queries)
    # Scale split drifts by join count: keep only queries with >= 2 joins.
    scale_qs = [q for q in scale_qs if q.num_joins >= 2]
    job_light_qs = _job_light_queries(job_light_queries, seed + 3)

    from repro.engine.session import EngineSession
    session = EngineSession(database, machine, seed=seed)
    return Workload3(
        train=collect_workload(database, train_qs, machine, seed, session=session),
        synthetic=collect_workload(
            database, synthetic_qs, machine, seed, session=session
        ),
        scale=collect_workload(database, scale_qs, machine, seed, session=session),
        job_light=collect_workload(
            database, job_light_qs, machine, seed, session=session
        ),
    )
