"""Data-drift workloads: TPC-H at growing scale factors (Fig 7).

The paper trains WDMs on TPC-H(1GB) and tests every model on the same query
statements executed against TPC-H at larger sizes.  Here the base database
is the zoo's ``tpc_h`` and the scale factor multiplies every table's row
count (FKs re-mapped), so true costs — and therefore the EDQO — shift with
size while the SQL text stays fixed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.catalog.zoo import load_database
from repro.engine.machines import M1, MachineProfile
from repro.sql.generator import QueryGenerator, WorkloadSpec
from repro.sql.query import Query
from repro.workloads.dataset import PlanDataset, collect_workload

DEFAULT_SCALE_FACTORS = (1.0, 2.0, 5.0, 10.0)

DRIFT_SPEC = WorkloadSpec(
    max_joins=3, max_predicates=4, min_predicates=1, eq_fraction=0.4
)


def drift_queries(count: int, seed: int = 0) -> List[Query]:
    """A fixed TPC-H test workload reused at every scale factor."""
    database = load_database("tpc_h")
    return QueryGenerator(database, DRIFT_SPEC, seed=seed + 31).generate_many(
        count
    )


def drift_datasets(
    queries: Optional[Sequence[Query]] = None,
    scale_factors: Sequence[float] = DEFAULT_SCALE_FACTORS,
    machine: MachineProfile = M1,
    num_queries: int = 300,
    stale_stats: bool = False,
    seed: int = 0,
) -> Dict[float, PlanDataset]:
    """Execute the same workload against TPC-H at each scale factor.

    ``stale_stats=False`` (default) re-ANALYZEs at every scale, as a
    well-maintained system would.  ``stale_stats=True`` keeps the base
    scale's statistics while the data grows — the harsher (and common)
    production failure mode, where the optimizer's estimates drift further
    from reality the more the data changes.
    """
    if queries is None:
        queries = drift_queries(num_queries, seed)
    base = load_database("tpc_h")
    from repro.catalog.stats import collect_table_stats
    from repro.engine.session import EngineSession

    base_stats = collect_table_stats(base, seed=seed) if stale_stats else None
    datasets: Dict[float, PlanDataset] = {}
    for factor in scale_factors:
        database = base if factor == 1.0 else base.scale(factor, seed=seed)
        session = None
        if stale_stats:
            # Row counts in the stale stats still reflect the base scale.
            session = EngineSession(
                database, machine, seed=seed, stats=base_stats
            )
        datasets[factor] = collect_workload(
            database, queries, machine=machine, seed=seed, session=session
        )
        # Keep provenance stable across scales for the harness.
        for sample in datasets[factor]:
            sample.database_name = "tpc_h"
    return datasets
