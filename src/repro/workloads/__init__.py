"""Workload construction: the paper's workloads 1, 2, 3 and the drift suite.

- Workload 1: Zero-Shot-style complex queries on each of the 20 zoo
  databases, executed on machine M1 (leave-one-database-out protocol).
- Workload 2: the same query statements executed on machine M2
  ("across-more").
- Workload 3: the MSCN benchmark against IMDB — a large training split plus
  the synthetic / scale / JOB-light test splits.
- Drift: TPC-H at increasing scale factors with a fixed test workload.
"""

from repro.workloads.dataset import PlanDataset, PlanSample, collect_workload
from repro.workloads.encoded import (
    EncodedDataset,
    EncodingCache,
    default_cache_dir,
    encoding_cache_key,
)
from repro.workloads.zeroshot import workload1, workload2
from repro.workloads.mscn import Workload3, build_workload3
from repro.workloads.drift import drift_datasets
from repro.workloads.serialize import load_dataset, save_dataset
from repro.workloads.describe import WorkloadSummary, describe, describe_text

__all__ = [
    "PlanSample",
    "PlanDataset",
    "collect_workload",
    "EncodedDataset",
    "EncodingCache",
    "encoding_cache_key",
    "default_cache_dir",
    "workload1",
    "workload2",
    "Workload3",
    "build_workload3",
    "drift_datasets",
    "save_dataset",
    "load_dataset",
    "describe",
    "describe_text",
    "WorkloadSummary",
]
