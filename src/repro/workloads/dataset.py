"""Plan datasets: executed query plans with latency labels.

A :class:`PlanSample` is one (query, annotated plan) pair from one database;
the plan carries optimizer estimates per node (model features) and simulated
actual times per node (labels).  A :class:`PlanDataset` is an ordered
collection with split/filter helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.catalog.datagen import Database
from repro.engine.machines import M1, MachineProfile
from repro.engine.plan import PlanNode
from repro.engine.session import EngineSession
from repro.sql.query import Query

DEFAULT_TIMEOUT_MS = 120_000.0  # like a 2-minute statement_timeout


@dataclass
class PlanSample:
    """One executed query: plan with estimates + labels, and provenance."""

    plan: PlanNode
    query: Query
    database_name: str

    @property
    def latency_ms(self) -> float:
        return float(self.plan.actual_time_ms)

    @property
    def est_cost(self) -> float:
        return float(self.plan.est_cost)

    @property
    def num_nodes(self) -> int:
        return self.plan.num_nodes()


@dataclass
class PlanDataset:
    """An ordered collection of plan samples."""

    samples: List[PlanSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[PlanSample]:
        return iter(self.samples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return PlanDataset(self.samples[index])
        return self.samples[index]

    def append(self, sample: PlanSample) -> None:
        self.samples.append(sample)

    def extend(self, other: "PlanDataset") -> None:
        self.samples.extend(other.samples)

    # ------------------------------------------------------------------ #
    def latencies(self) -> np.ndarray:
        return np.array([s.latency_ms for s in self.samples])

    def est_costs(self) -> np.ndarray:
        return np.array([s.est_cost for s in self.samples])

    def database_names(self) -> List[str]:
        return sorted({s.database_name for s in self.samples})

    def filter(self, keep: Callable[[PlanSample], bool]) -> "PlanDataset":
        return PlanDataset([s for s in self.samples if keep(s)])

    def shuffled(self, seed: int = 0) -> "PlanDataset":
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.samples))
        return PlanDataset([self.samples[i] for i in order])

    def split(self, fraction: float, seed: int = 0
              ) -> Tuple["PlanDataset", "PlanDataset"]:
        """Random (train, test) split with ``fraction`` going to train."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("split fraction must be in (0, 1)")
        shuffled = self.shuffled(seed)
        cut = int(round(len(shuffled) * fraction))
        return shuffled[:cut], shuffled[cut:]

    def subset(self, count: int, seed: int = 0) -> "PlanDataset":
        """A random subset of at most ``count`` samples."""
        if count >= len(self.samples):
            return PlanDataset(list(self.samples))
        return self.shuffled(seed)[:count]

    def by_node_count(self) -> dict:
        """Group samples into buckets by plan node count."""
        buckets: dict = {}
        for sample in self.samples:
            buckets.setdefault(sample.num_nodes, []).append(sample)
        return {k: PlanDataset(v) for k, v in sorted(buckets.items())}

    @staticmethod
    def merge(datasets: Iterable["PlanDataset"]) -> "PlanDataset":
        merged = PlanDataset()
        for dataset in datasets:
            merged.extend(dataset)
        return merged


def collect_workload(
    database: Database,
    queries: Sequence[Query],
    machine: MachineProfile = M1,
    seed: int = 0,
    timeout_ms: float = DEFAULT_TIMEOUT_MS,
    session: Optional[EngineSession] = None,
) -> PlanDataset:
    """Execute ``queries`` and return the labelled dataset.

    Queries whose simulated latency exceeds ``timeout_ms`` are dropped,
    mirroring the statement timeout used when collecting real benchmark
    labels.
    """
    if session is None:
        session = EngineSession(database, machine, seed=seed)
    dataset = PlanDataset()
    for query in queries:
        plan = session.explain_analyze(query)
        if plan.actual_time_ms > timeout_ms:
            continue
        dataset.append(
            PlanSample(plan=plan, query=query, database_name=database.name)
        )
    return dataset
