"""Workload description: what's actually in a labelled dataset.

Summarizes the distributions a practitioner checks before training on a
workload: latency percentiles, join-count and plan-size histograms,
operator mix, and how far the optimizer's costs track the labels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.metrics.tables import format_table
from repro.workloads.dataset import PlanDataset


@dataclass(frozen=True)
class WorkloadSummary:
    """Structured description of a plan dataset."""

    queries: int
    databases: List[str]
    latency_percentiles_ms: Dict[str, float]
    join_histogram: Dict[int, int]
    node_count_percentiles: Dict[str, float]
    operator_mix: Dict[str, int]
    cost_latency_correlation: float  # log-log Pearson


def describe(dataset: PlanDataset) -> WorkloadSummary:
    """Compute the summary for ``dataset``."""
    if len(dataset) == 0:
        raise ValueError("empty dataset")
    latencies = dataset.latencies()
    costs = dataset.est_costs()
    node_counts = np.array([s.num_nodes for s in dataset])
    joins = Counter(s.query.num_joins for s in dataset)
    operators = Counter(
        node.node_type for s in dataset for node in s.plan.walk_dfs()
    )
    if latencies.std() > 0 and costs.std() > 0:
        correlation = float(np.corrcoef(
            np.log1p(costs), np.log(np.maximum(latencies, 1e-9))
        )[0, 1])
    else:
        correlation = 0.0

    def percentiles(values: np.ndarray) -> Dict[str, float]:
        p50, p90, p99 = np.percentile(values, [50, 90, 99])
        return {
            "min": float(values.min()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
            "max": float(values.max()),
        }

    return WorkloadSummary(
        queries=len(dataset),
        databases=dataset.database_names(),
        latency_percentiles_ms=percentiles(latencies),
        join_histogram=dict(sorted(joins.items())),
        node_count_percentiles=percentiles(node_counts),
        operator_mix=dict(operators.most_common()),
        cost_latency_correlation=correlation,
    )


def describe_text(dataset: PlanDataset) -> str:
    """Human-readable rendering of :func:`describe`."""
    summary = describe(dataset)
    lines = [
        f"{summary.queries} labelled queries over "
        f"{', '.join(summary.databases)}",
        "",
        format_table(
            ["metric", "min", "p50", "p90", "p99", "max"],
            [
                ["latency (ms)"] + [
                    summary.latency_percentiles_ms[k]
                    for k in ("min", "p50", "p90", "p99", "max")
                ],
                ["plan nodes"] + [
                    summary.node_count_percentiles[k]
                    for k in ("min", "p50", "p90", "p99", "max")
                ],
            ],
        ),
        "",
        "joins: " + "  ".join(
            f"{joins}j×{count}"
            for joins, count in summary.join_histogram.items()
        ),
        "operators: " + "  ".join(
            f"{name}×{count}"
            for name, count in list(summary.operator_mix.items())[:8]
        ),
        f"log(cost) / log(latency) correlation: "
        f"{summary.cost_latency_correlation:.3f}",
    ]
    return "\n".join(lines)
