"""Encode-once training pipeline: pre-encoded, bucketed plan datasets.

The training loop used to call ``PlanEncoder.encode_batch`` inside every
epoch — for the training batches *and* again for validation — rebuilding
identical one-hot/robust-scaled features, adjacency masks, and
``alpha ** height`` loss weights 40+ times per run.  The encoding is
deterministic given the encoder state, so all of that is redundant work.

:class:`EncodedDataset` encodes a caught-plan list exactly once (through
the vectorized ``PlanEncoder.encode_plans``) and serves size-bucketed
padded :class:`~repro.featurize.encoder.EncodedBatch` objects that are
bit-identical to what per-epoch re-encoding would have produced.  Batch
*composition* is fixed (plans sorted by node count, sliced into
``batch_size`` groups — the same deterministic grouping the trainer always
used); only the batch *order* is shuffled per epoch by the trainer's
seeded RNG, so the gradient schedule does not change by a single bit.

:class:`EncodingCache` adds an on-disk tier: ``.npz`` files keyed by a
content hash of the encoder state plus the dataset fingerprint, so
separate processes (the ``bench_fig*``/``bench_tab*`` scripts re-running
19-of-20 database splits) skip re-encoding entirely.  Cache traffic is
observable through ``encodecache.*`` counters and manageable through the
``repro cache`` CLI.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.featurize.catcher import CaughtPlan
from repro.featurize.encoder import LABEL_EPS_MS, EncodedBatch, PlanEncoder
from repro.featurize.loss_weights import loss_weights
from repro.obs import MetricsRegistry

#: Environment override for the on-disk encoding cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bumped whenever the on-disk layout or the encoding semantics change:
#: a version mismatch can never alias because it is part of the key.
_FORMAT_VERSION = 1


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


class EncodedDataset:
    """A plan dataset encoded exactly once, served as padded batches.

    Holds per-plan feature arrays plus everything else a training batch
    needs (adjacency, heights, loss weights, labels) and assembles padded
    batches on demand.  Assembled batches are memoized per batch size, so
    epochs after the first pay only a list copy and an RNG shuffle.
    """

    def __init__(
        self,
        features: Sequence[np.ndarray],
        adjacency: Sequence[np.ndarray],
        heights: Sequence[np.ndarray],
        weights: Sequence[np.ndarray],
        labels: Optional[Sequence[np.ndarray]],
    ) -> None:
        if not features:
            raise ValueError("cannot build an empty EncodedDataset")
        self.features = list(features)
        self.adjacency = list(adjacency)
        self.heights = list(heights)
        self.weights = list(weights)
        self.labels = list(labels) if labels is not None else None
        self.node_counts = np.array(
            [f.shape[0] for f in self.features], dtype=np.int64
        )
        self.dim = int(self.features[0].shape[1])
        self._bucketed: Dict[int, List[EncodedBatch]] = {}
        self._sequential: Dict[int, List[EncodedBatch]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def encode(
        cls,
        encoder: PlanEncoder,
        plans: Sequence[CaughtPlan],
        with_labels: bool = True,
    ) -> "EncodedDataset":
        """Encode ``plans`` once through the vectorized encoder path.

        Every stored array is bit-identical to what
        ``encoder.encode_batch`` computes per epoch, which is what makes
        swapping this pipeline into the trainer a pure performance change.
        """
        if not plans:
            raise ValueError("cannot encode an empty plan list")
        features = encoder.encode_plans(plans)
        labels: Optional[List[np.ndarray]] = None
        if with_labels:
            labels = []
            for plan in plans:
                if plan.actual_times is None:
                    raise ValueError(
                        "plan has no labels; executed plans needed"
                    )
                labels.append(
                    np.log(np.maximum(plan.actual_times, LABEL_EPS_MS))
                )
        return cls(
            features=features,
            adjacency=[plan.adjacency for plan in plans],
            heights=[plan.heights for plan in plans],
            weights=[
                loss_weights(plan.heights, encoder.alpha) for plan in plans
            ],
            labels=labels,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.features)

    @property
    def has_labels(self) -> bool:
        return self.labels is not None

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint of the per-plan arrays."""
        total = self.node_counts.nbytes
        for arrays in (self.features, self.adjacency, self.heights,
                       self.weights, self.labels or []):
            total += sum(a.nbytes for a in arrays)
        return total

    # ------------------------------------------------------------------ #
    # Batch assembly
    # ------------------------------------------------------------------ #
    def _assemble(self, indices: Sequence[int]) -> EncodedBatch:
        """Pad the selected plans into one batch.

        Mirrors ``PlanEncoder.encode_batch`` field for field (zero fill,
        padding rows attending to themselves, loss weight 0 on padding)
        so the two paths agree byte-for-byte.
        """
        batch = len(indices)
        n_max = int(max(self.node_counts[i] for i in indices))
        features = np.zeros((batch, n_max, self.dim), dtype=np.float64)
        attention = np.zeros((batch, n_max, n_max), dtype=bool)
        valid = np.zeros((batch, n_max), dtype=bool)
        heights = np.zeros((batch, n_max), dtype=np.int64)
        weights = np.zeros((batch, n_max), dtype=np.float64)
        labels: Optional[np.ndarray] = None
        if self.labels is not None:
            labels = np.zeros((batch, n_max), dtype=np.float64)
        for row, index in enumerate(indices):
            n = int(self.node_counts[index])
            features[row, :n] = self.features[index]
            attention[row, :n, :n] = self.adjacency[index]
            valid[row, :n] = True
            heights[row, :n] = self.heights[index]
            weights[row, :n] = self.weights[index]
            if labels is not None:
                labels[row, :n] = self.labels[index]
            if n < n_max:
                pad = np.arange(n, n_max)
                attention[row, pad, pad] = True
        return EncodedBatch(
            features=features,
            attention_mask=attention,
            valid=valid,
            heights=heights,
            loss_weights=weights,
            labels_log=labels,
        )

    def bucketed_batches(self, batch_size: int) -> List[EncodedBatch]:
        """Size-bucketed batches in deterministic (sorted) order.

        Plans are stably sorted by node count and sliced into
        ``batch_size`` groups — exactly the trainer's historical batch
        composition.  Callers shuffle the *order* of the returned list
        per epoch; the batches themselves are built once and reused.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        cached = self._bucketed.get(batch_size)
        if cached is None:
            order = sorted(range(len(self)),
                           key=lambda i: self.node_counts[i])
            cached = [
                self._assemble(order[start:start + batch_size])
                for start in range(0, len(order), batch_size)
            ]
            self._bucketed[batch_size] = cached
        return cached

    def sequential_batches(self, batch_size: int) -> List[EncodedBatch]:
        """Original-order batches (the validation/evaluation chunking)."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        cached = self._sequential.get(batch_size)
        if cached is None:
            cached = [
                self._assemble(range(start, min(start + batch_size, len(self))))
                for start in range(0, len(self), batch_size)
            ]
            self._sequential[batch_size] = cached
        return cached

    # ------------------------------------------------------------------ #
    # On-disk serialization (ragged arrays stored flat + offsets)
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> None:
        """Write the per-plan arrays to one ``.npz`` file."""
        arrays = {
            "version": np.array(_FORMAT_VERSION, dtype=np.int64),
            "node_counts": self.node_counts,
            "features": np.concatenate(self.features, axis=0),
            "heights": np.concatenate(self.heights),
            "weights": np.concatenate(self.weights),
            "adjacency": np.concatenate(
                [a.reshape(-1) for a in self.adjacency]
            ),
            "has_labels": np.array(self.labels is not None),
        }
        if self.labels is not None:
            arrays["labels"] = np.concatenate(self.labels)
        # Through an open handle, not a path: np.savez silently renames
        # path-like targets that do not end in ``.npz``, which would break
        # the cache's write-to-temp-then-replace protocol.
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)

    @classmethod
    def load(cls, path: str) -> "EncodedDataset":
        """Load a dataset written by :meth:`save`, byte-for-byte."""
        with np.load(path) as archive:
            version = int(archive["version"])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"encoded dataset format v{version} is not v"
                    f"{_FORMAT_VERSION}"
                )
            counts = archive["node_counts"]
            offsets = np.cumsum(counts)[:-1]
            features = np.split(archive["features"], offsets, axis=0)
            heights = np.split(archive["heights"], offsets)
            weights = np.split(archive["weights"], offsets)
            square_offsets = np.cumsum(counts * counts)[:-1]
            adjacency = [
                flat.reshape(n, n) for flat, n in zip(
                    np.split(archive["adjacency"], square_offsets),
                    counts,
                )
            ]
            labels = None
            if bool(archive["has_labels"]):
                labels = np.split(archive["labels"], offsets)
        return cls(
            features=features,
            adjacency=adjacency,
            heights=heights,
            weights=weights,
            labels=labels,
        )


# ---------------------------------------------------------------------- #
# Cache keys
# ---------------------------------------------------------------------- #
def encoding_cache_key(
    encoder: PlanEncoder,
    plans: Sequence[CaughtPlan],
    with_labels: bool = True,
) -> str:
    """Content hash of everything that determines the encoded arrays.

    Covers the fitted encoder state (alpha, card source, extra features,
    the robust scaler's center/scale — refitting the encoder changes the
    key, which is the cache's invalidation story), the on-disk format
    version, and every plan's fingerprint in order, plus the label bytes
    when labels are requested (two datasets with identical plans but
    different measured latencies must never alias).
    """
    if not encoder.is_fit:
        raise RuntimeError("encoder must be fit before computing cache keys")
    digest = hashlib.blake2b(digest_size=16)
    header = (
        f"v{_FORMAT_VERSION}:alpha={encoder.alpha!r}"
        f":card={encoder.card_source}"
        f":extra={encoder.extra_features}"
        f":labels={with_labels}"
    )
    digest.update(header.encode("ascii"))
    digest.update(np.asarray(encoder.scaler.center_,
                             dtype=np.float64).tobytes())
    digest.update(np.asarray(encoder.scaler.scale_,
                             dtype=np.float64).tobytes())
    for plan in plans:
        digest.update(plan.fingerprint().encode("ascii"))
        if with_labels:
            if plan.actual_times is None:
                raise ValueError("plan has no labels; executed plans needed")
            digest.update(plan.actual_times.tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# On-disk cache
# ---------------------------------------------------------------------- #
class EncodingCache:
    """Content-addressed ``.npz`` store for :class:`EncodedDataset`.

    Writes are atomic (temp file + ``os.replace``) so concurrent
    benchmark processes can share one directory; unreadable or corrupt
    entries are treated as misses.  Traffic lands on ``encodecache.*``
    counters of the supplied registry.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = directory if directory else default_cache_dir()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter(
            "encodecache.hits", help="encoded datasets served from disk"
        )
        self._misses = self.metrics.counter(
            "encodecache.misses", help="encoded datasets built from scratch"
        )
        self._bytes_read = self.metrics.counter(
            "encodecache.bytes_read", help="bytes loaded from the cache"
        )
        self._bytes_written = self.metrics.counter(
            "encodecache.bytes_written", help="bytes stored into the cache"
        )

    def path(self, key: str) -> str:
        return os.path.join(self.directory, f"encoded-{key}.npz")

    # ------------------------------------------------------------------ #
    def load(self, key: str) -> Optional[EncodedDataset]:
        """The cached dataset for ``key``, or None (counted as a miss)."""
        path = self.path(key)
        try:
            size = os.path.getsize(path)
            dataset = EncodedDataset.load(path)
        except FileNotFoundError:
            self._misses.inc()
            return None
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # A torn or stale file must never poison training: drop it
            # and rebuild.
            try:
                os.remove(path)
            except OSError:
                pass
            self._misses.inc()
            return None
        self._hits.inc()
        self._bytes_read.inc(size)
        return dataset

    def store(self, key: str, dataset: EncodedDataset) -> str:
        """Atomically persist ``dataset`` under ``key``; returns the path.

        Safe under concurrent multi-process writers: each writer stages
        into its own ``mkstemp`` file and publishes with ``os.replace``,
        so the final path only ever holds a complete file and the last
        writer wins.  If another process clears the cache directory
        mid-write (``repro cache clear``), the vanished-directory
        ``FileNotFoundError`` is retried once against a re-created
        directory rather than failing the training run.
        """
        path = self.path(key)
        for attempt in (0, 1):
            os.makedirs(self.directory, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(
                    prefix=".encoded-", suffix=".npz.tmp", dir=self.directory
                )
            except FileNotFoundError:
                if attempt:
                    raise
                continue
            try:
                os.close(fd)
                dataset.save(tmp)
                size = os.path.getsize(tmp)
                os.replace(tmp, path)
            except FileNotFoundError:
                # The directory (tmp file included) vanished under us.
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                if attempt:
                    raise
                continue
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
            self._bytes_written.inc(size)
            return path
        raise OSError(  # pragma: no cover - loop always returns or raises
            f"could not persist encoding cache entry {path}"
        )

    def get_or_encode(
        self,
        encoder: PlanEncoder,
        plans: Sequence[CaughtPlan],
        with_labels: bool = True,
    ) -> EncodedDataset:
        """Serve from disk when possible, else encode once and persist."""
        key = encoding_cache_key(encoder, plans, with_labels=with_labels)
        dataset = self.load(key)
        if dataset is None:
            dataset = EncodedDataset.encode(
                encoder, plans, with_labels=with_labels
            )
            self.store(key, dataset)
        return dataset

    # ------------------------------------------------------------------ #
    # Inspection / maintenance (the `repro cache` CLI)
    # ------------------------------------------------------------------ #
    def entries(self) -> List[Tuple[str, int]]:
        """(filename, size in bytes) for every cached encoding."""
        try:
            names = sorted(os.listdir(self.directory))
        except FileNotFoundError:
            return []
        out: List[Tuple[str, int]] = []
        for name in names:
            if not (name.startswith("encoded-") and name.endswith(".npz")):
                continue
            try:
                out.append(
                    (name, os.path.getsize(os.path.join(self.directory, name)))
                )
            except OSError:
                continue
        return out

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self.entries())

    def clear(self) -> int:
        """Delete every cached encoding; returns how many were removed."""
        removed = 0
        for name, _ in self.entries():
            try:
                os.remove(os.path.join(self.directory, name))
                removed += 1
            except OSError:
                continue
        return removed
