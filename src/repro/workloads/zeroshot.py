"""Workloads 1 and 2: Zero-Shot-style complex queries across the zoo.

Workload 1 runs each database's queries on machine M1; workload 2 runs the
*same query statements* on machine M2 (the "across-more" scenario).  Per the
paper each database gets its own generated workload; the leave-one-out
protocol (train on 19, test on 1) is applied by the experiment harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import zlib

from repro.catalog.zoo import ZOO_DATABASE_NAMES, load_database
from repro.engine.machines import M1, M2, MachineProfile
from repro.sql.generator import QueryGenerator, WorkloadSpec
from repro.sql.query import Query
from repro.workloads.dataset import PlanDataset, collect_workload

COMPLEX_SPEC = WorkloadSpec(
    max_joins=5, max_predicates=5, min_predicates=1, eq_fraction=0.45
)


def generate_queries(
    database_name: str,
    count: int,
    spec: WorkloadSpec = COMPLEX_SPEC,
    seed_offset: int = 0,
) -> List[Query]:
    """The deterministic query statements for one zoo database."""
    database = load_database(database_name)
    seed = zlib.crc32(database_name.encode()) + 7919 * seed_offset
    return QueryGenerator(database, spec, seed=seed).generate_many(count)


def _workload(
    machine: MachineProfile,
    queries_per_db: int,
    database_names: Optional[Sequence[str]],
    seed: int,
) -> Dict[str, PlanDataset]:
    names = list(database_names) if database_names else list(ZOO_DATABASE_NAMES)
    datasets: Dict[str, PlanDataset] = {}
    for name in names:
        database = load_database(name)
        queries = generate_queries(name, queries_per_db)
        datasets[name] = collect_workload(
            database, queries, machine=machine, seed=seed
        )
    return datasets


def workload1(
    queries_per_db: int = 500,
    database_names: Optional[Sequence[str]] = None,
    seed: int = 0,
    machine: Optional[MachineProfile] = None,
) -> Dict[str, PlanDataset]:
    """Complex queries per database, labels collected on machine M1.

    ``machine`` overrides the collection profile (the experiment
    matrix's ``machine`` axis threads through here).
    """
    return _workload(machine or M1, queries_per_db, database_names, seed)


def workload2(
    queries_per_db: int = 500,
    database_names: Optional[Sequence[str]] = None,
    seed: int = 0,
    machine: Optional[MachineProfile] = None,
) -> Dict[str, PlanDataset]:
    """The same statements as workload 1, labels collected on machine M2.

    ``machine`` overrides the collection profile; the across-more
    protocol only requires that it differ from workload 1's.
    """
    return _workload(machine or M2, queries_per_db, database_names, seed + 1)
